// Tests for the training-run observability stack (src/train_obs): the JSONL
// event log (per-task series, kill-and-resume dedup), the numerics sentinels
// (NaN/Inf detection, nan-abort fail-fast), checkpoint telemetry, the
// heartbeat throttle, attention statistics, and the /trainz endpoint — plus
// the Histogram NaN-rejection regression test the sentinels depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "tensor/tensor.h"
#include "train_obs/train_obs.h"
#include "util/atomic_file.h"
#include "util/http_server.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/trace.h"

namespace emba {
namespace {

std::string TempPath(const std::string& name) { return "/tmp/emba_" + name; }

std::vector<std::string> ReadLines(const std::string& path) {
  std::string contents;
  EMBA_CHECK(ReadFileToString(path, &contents).ok());
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) nl = contents.size();
    if (nl > pos) lines.push_back(contents.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

bool EventType(const std::string& line, std::string* type) {
  const std::string needle = "\"type\": \"";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const size_t start = pos + needle.size();
  const size_t stop = line.find('"', start);
  if (stop == std::string::npos) return false;
  *type = line.substr(start, stop - start);
  return true;
}

int64_t FieldInt(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = line.find(needle);
  EMBA_CHECK_MSG(pos != std::string::npos, "missing field " + key);
  return std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
}

/// The per-type event lines of a log, in file order.
std::vector<std::string> EventsOfType(const std::string& path,
                                      const std::string& want) {
  std::vector<std::string> out;
  for (const std::string& line : ReadLines(path)) {
    std::string type;
    if (EventType(line, &type) && type == want) out.push_back(line);
  }
  return out;
}

/// Shared reset: every test starts with no run state, no event log, all
/// train_obs gates off, and zeroed metrics.
void ResetObservability() {
  train_obs::ResetTrainObsForTest();
  train_obs::SetEventLogPath("");
  train_obs::SetNanAbort(false);
  train_obs::SetSentinelsEnabled(false);
  train_obs::SetAttnStatsEnabled(false);
  metrics::Registry::Global().ResetAllForTest();
  ResetTrainStateForTest();
}

class TrainObsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetObservability(); }
  void TearDown() override { ResetObservability(); }
};

// Mirrors the checkpoint-test resume fixture: a tiny encoded WDC split and
// model budget small enough that a full training run takes ~a second.
core::EncodedDataset TinyDataset() {
  data::GeneratorOptions options;
  options.seed = 33;
  options.size_factor = 0.3;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
  core::EncodeOptions encode_options;
  encode_options.max_len = 32;
  encode_options.wordpiece_vocab = 600;
  return core::EncodeDataset(dataset, encode_options);
}

core::ModelBudget TinyBudget() {
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 32;
  return budget;
}

core::TrainConfig TinyConfig(Rng* dropout_rng) {
  core::TrainConfig config;
  config.max_epochs = 2;
  config.min_epochs = 1;
  config.patience = 4;
  config.seed = 77;
  config.dropout_rng = dropout_rng;
  config.heartbeat_seconds = 0.0;
  return config;
}

// ---------- Histogram NaN rejection (sentinel substrate) ----------

TEST(HistogramNanTest, ObserveRejectsNanWithoutPoisoningSum) {
  metrics::Histogram hist({1.0, 2.0});
  hist.Observe(std::nan(""));
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.NanCount(), 1u);
  hist.Observe(0.5);
  hist.Observe(std::nan(""));
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_EQ(hist.NanCount(), 2u);
  // The regression this guards: one NaN in sum_ poisons every later mean.
  EXPECT_FALSE(std::isnan(hist.Sum()));
  EXPECT_DOUBLE_EQ(hist.Sum(), 0.5);
}

TEST(HistogramNanTest, InfinityIsStillALegalObservation) {
  metrics::Histogram hist({1.0, 2.0});
  hist.Observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_EQ(hist.NanCount(), 0u);
  const auto snap = hist.GetSnapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 3u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);  // +inf bucket
}

TEST(HistogramNanTest, ExemplarPathRejectsNanToo) {
  metrics::Histogram hist({1.0});
  hist.ObserveWithExemplar(std::nan(""), 0xabcd);
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.NanCount(), 1u);
  EXPECT_TRUE(hist.SnapshotExemplars().empty());
}

// ---------- Sentinel unit behavior ----------

TEST_F(TrainObsTest, ObserveGradientsFlagsFirstNonfiniteParam) {
  train_obs::SetSentinelsEnabled(true);
  Tensor good = Tensor::FromVector({0.5f, -0.5f});
  Tensor bad = Tensor::FromVector({1.0f, std::nanf("")});
  const std::string name_a = "encoder.w";
  const std::string name_b = "em_head.w";
  auto obs = train_obs::ObserveGradients(
      {{&name_a, &good}, {&name_b, &bad}});
  EXPECT_TRUE(obs.nonfinite);
  EXPECT_EQ(obs.offender, "em_head.w");
  ASSERT_EQ(obs.module_norms.size(), 2u);
  EXPECT_EQ(obs.module_norms[0].first, "em_head");
  EXPECT_EQ(obs.module_norms[1].first, "encoder");
  EXPECT_NEAR(obs.module_norms[1].second, std::sqrt(0.5), 1e-6);
  EXPECT_EQ(metrics::GetCounter("training.numerics.nonfinite_grads").Value(),
            1u);
}

TEST_F(TrainObsTest, ObserveGradientsSkipsNullAndStaysFinite) {
  train_obs::SetSentinelsEnabled(true);
  Tensor grad = Tensor::FromVector({3.0f, 4.0f});
  const std::string with = "m.w";
  const std::string without = "m.frozen";
  auto obs =
      train_obs::ObserveGradients({{&with, &grad}, {&without, nullptr}});
  EXPECT_FALSE(obs.nonfinite);
  EXPECT_NEAR(obs.global_norm, 5.0, 1e-9);
  EXPECT_EQ(metrics::GetCounter("training.numerics.nonfinite_grads").Value(),
            0u);
}

TEST_F(TrainObsTest, ObserveLossNamesTheOffendingTask) {
  train_obs::SetSentinelsEnabled(true);
  std::string offender;
  EXPECT_TRUE(train_obs::ObserveLoss(0.5, 1.0, 2.0, &offender));
  EXPECT_FALSE(train_obs::ObserveLoss(
      0.5, std::numeric_limits<double>::infinity(), 2.0, &offender));
  EXPECT_EQ(offender, "id1");
  EXPECT_EQ(metrics::GetCounter("training.numerics.nonfinite_losses").Value(),
            1u);
}

TEST_F(TrainObsTest, AttentionRowObserverFeedsEntropyAndRowmax) {
  train_obs::SetAttnStatsEnabled(true);
  const int family = train_obs::RegisterAttentionFamily("unittest_fam");
  EXPECT_EQ(train_obs::RegisterAttentionFamily("unittest_fam"), family);
  // Two softmax rows: uniform over 4 (entropy ln 4, max 0.25) and a
  // one-hot (entropy 0, max 1).
  Tensor rows = Tensor::FromValues(
      2, 4, {0.25f, 0.25f, 0.25f, 0.25f, 1.0f, 0.0f, 0.0f, 0.0f});
  train_obs::ObserveAttentionRows(family, rows);
  auto& entropy =
      metrics::GetHistogram("training.attn.entropy.unittest_fam");
  auto& rowmax = metrics::GetHistogram("training.attn.rowmax.unittest_fam");
  EXPECT_EQ(entropy.Count(), 2u);
  EXPECT_EQ(rowmax.Count(), 2u);
  EXPECT_NEAR(entropy.Sum(), std::log(4.0), 1e-6);
  EXPECT_NEAR(rowmax.Sum(), 1.25, 1e-6);
}

// ---------- End-to-end: emba training with full telemetry ----------

TEST_F(TrainObsTest, EmbaRunEmitsPerTaskSeriesCheckpointsAndTrainz) {
  const std::string log_path = TempPath("train_obs_events.jsonl");
  const std::string ckpt = TempPath("train_obs_run.ckpt");
  std::remove(log_path.c_str());
  std::remove(ckpt.c_str());
  train_obs::SetEventLogPath(log_path);
  trace::Start();

  core::EncodedDataset dataset = TinyDataset();
  Rng rng(11);
  auto model = core::CreateModel("emba", TinyBudget(),
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config = TinyConfig(&rng);
  config.checkpoint_path = ckpt;
  // Pathological heartbeat interval: fires every step, so the 1 Hz
  // throttle must suppress almost all of them.
  config.heartbeat_seconds = 1e-4;
  core::Trainer trainer(model->get(), &dataset, config);
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());
  trace::Stop();
  ASSERT_EQ(result.epochs_ran, 2);

  // Per-task series: every step event carries all three MTL heads, with
  // id-head losses genuinely populated (emba has aux heads).
  const auto steps = EventsOfType(log_path, "step");
  ASSERT_GT(steps.size(), 2u);
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(FieldInt(steps[i], "step"), static_cast<int64_t>(i));
    EXPECT_NE(steps[i].find("\"loss\": {\"em\": "), std::string::npos);
    EXPECT_NE(steps[i].find("\"id1\": "), std::string::npos);
    EXPECT_NE(steps[i].find("\"id2\": "), std::string::npos);
    // Examples counts live behind the loss sums; anchor on the full key
    // path so the loss object's "em" can't shadow the count.
    const size_t ex = steps[i].find("\"examples\": {\"em\": ");
    ASSERT_NE(ex, std::string::npos);
    EXPECT_GT(std::strtoll(steps[i].c_str() + ex + 19, nullptr, 10), 0);
  }
  const auto run_starts = EventsOfType(log_path, "run_start");
  ASSERT_EQ(run_starts.size(), 1u);
  EXPECT_NE(run_starts[0].find("\"model\": \"emba\""), std::string::npos);
  EXPECT_NE(run_starts[0].find("\"aux_heads\": true"), std::string::npos);
  EXPECT_EQ(EventsOfType(log_path, "epoch").size(), 2u);
  const auto evals = EventsOfType(log_path, "eval");
  EXPECT_EQ(evals.size(), 3u);  // 2 valid + 1 test
  EXPECT_EQ(EventsOfType(log_path, "run_end").size(), 1u);

  // Checkpoint telemetry: the counters, the event, the span, /healthz state.
  EXPECT_EQ(metrics::GetCounter("training.checkpoint.writes").Value(), 2u);
  EXPECT_GT(metrics::GetCounter("training.checkpoint.bytes").Value(), 0u);
  const auto ckpts = EventsOfType(log_path, "checkpoint");
  ASSERT_EQ(ckpts.size(), 2u);
  EXPECT_NE(ckpts[0].find(ckpt), std::string::npos);
  EXPECT_GT(FieldInt(ckpts[0], "bytes"), 0);
  bool saw_write_span = false;
  for (const auto& ev : trace::SnapshotRecentEvents(100000)) {
    if (ev.name == "trainer/checkpoint_write") saw_write_span = true;
  }
  EXPECT_TRUE(saw_write_span);
  const LastCheckpointInfo last = GetLastCheckpoint();
  EXPECT_TRUE(last.valid);
  EXPECT_EQ(last.path, ckpt);
  EXPECT_EQ(last.epoch, 1);

  // Heartbeat throttle: the per-step firing rate must have been suppressed.
  EXPECT_GT(metrics::GetCounter("training.heartbeat.suppressed").Value(), 0u);

  // Sentinels never fired on a healthy run.
  EXPECT_EQ(metrics::GetCounter("training.numerics.nonfinite_losses").Value(),
            0u);
  EXPECT_EQ(metrics::GetCounter("training.numerics.nonfinite_grads").Value(),
            0u);

  // /trainz: JSON carries the same per-task series; HTML renders; the
  // observability endpoint table routes to it (the registrar static init).
  http::HttpRequest req;
  req.method = "GET";
  req.path = "/trainz";
  req.query = "format=json";
  http::HttpResponse json = train_obs::HandleTrainzRequest(req);
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("\"finished\": true"), std::string::npos);
  EXPECT_NE(json.body.find("\"model\": \"emba\""), std::string::npos);
  for (const char* key :
       {"\"epoch_loss\"", "\"loss_em\": [", "\"loss_id1\": [",
        "\"loss_id2\": [", "\"eval\"", "\"sentinels\"", "\"last_checkpoint\""}) {
    EXPECT_NE(json.body.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.body.find("\"loss_id1\": []"), std::string::npos)
      << "id1 series empty for an aux-head model";
  req.query = "";
  http::HttpResponse html = train_obs::HandleTrainzRequest(req);
  EXPECT_EQ(html.status, 200);
  EXPECT_NE(html.body.find("id1"), std::string::npos);
  http::HttpResponse routed = HandleObservabilityRequest(req);
  EXPECT_EQ(routed.status, 200);
  EXPECT_EQ(routed.body, html.body);

  std::remove(log_path.c_str());
  std::remove(ckpt.c_str());
}

// ---------- Kill-and-resume event-log stitching ----------

TEST_F(TrainObsTest, KillAndResumeLeavesOneDuplicateFreeEventLog) {
  core::EncodedDataset dataset = TinyDataset();
  const std::string log_a = TempPath("train_obs_log_a.jsonl");
  const std::string log_b = TempPath("train_obs_log_b.jsonl");
  const std::string ckpt = TempPath("train_obs_resume.ckpt");
  std::remove(log_a.c_str());
  std::remove(log_b.c_str());
  std::remove(ckpt.c_str());

  auto train = [&](const std::string& log_path, int interrupt_after,
                   bool resume) {
    train_obs::SetEventLogPath(log_path);
    Rng rng(11);
    auto model = core::CreateModel("emba", TinyBudget(),
                                   dataset.wordpiece->vocab().size(),
                                   dataset.num_id_classes, &rng);
    ASSERT_TRUE(model.ok());
    core::TrainConfig config = TinyConfig(&rng);
    config.max_epochs = 3;
    config.checkpoint_path = ckpt;
    config.interrupt_after_epochs = interrupt_after;
    config.resume = resume;
    core::Trainer trainer(model->get(), &dataset, config);
    core::TrainResult result;
    ASSERT_TRUE(trainer.Run(&result).ok());
  };

  // Reference: one uninterrupted 3-epoch run.
  train(log_a, 0, false);
  // Kill after 2 epochs, then resume into the *same* log.
  std::remove(ckpt.c_str());
  train(log_b, 2, false);
  train(log_b, 0, true);

  // The stitched log holds exactly the reference step sequence — the
  // post-checkpoint steps of the killed run were trimmed, the replayed
  // steps appended once, nothing missing and nothing doubled.
  const auto ref_steps = EventsOfType(log_a, "step");
  const auto stitched_steps = EventsOfType(log_b, "step");
  ASSERT_EQ(stitched_steps.size(), ref_steps.size());
  for (size_t i = 0; i < ref_steps.size(); ++i) {
    EXPECT_EQ(FieldInt(stitched_steps[i], "step"),
              FieldInt(ref_steps[i], "step"));
    // Resume is bit-identical, so the per-task loss payloads match too.
    const auto loss_of = [](const std::string& line) {
      const size_t start = line.find("\"loss\": {");
      const size_t stop = line.find('}', start);
      return line.substr(start, stop - start);
    };
    EXPECT_EQ(loss_of(stitched_steps[i]), loss_of(ref_steps[i])) << i;
  }
  EXPECT_EQ(EventsOfType(log_b, "epoch").size(),
            EventsOfType(log_a, "epoch").size());
  // One run_start per process run survives (fresh + resumed), and only the
  // resumed run reaches the final eval + run_end.
  EXPECT_EQ(EventsOfType(log_b, "run_start").size(), 2u);
  EXPECT_EQ(EventsOfType(log_b, "run_end").size(), 1u);

  std::remove(log_a.c_str());
  std::remove(log_b.c_str());
  std::remove(ckpt.c_str());
}

// ---------- nan-abort fail-fast ----------

TEST_F(TrainObsTest, InjectedInfGradientTripsNanAbort) {
  // Fork-with-threads is unsafe once the kernel thread pool exists; the
  // threadsafe style re-executes the binary so the child starts clean.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::EncodedDataset dataset = TinyDataset();
  EXPECT_EXIT(
      {
        Rng rng(11);
        auto model = core::CreateModel("emba", TinyBudget(),
                                       dataset.wordpiece->vocab().size(),
                                       dataset.num_id_classes, &rng);
        EMBA_CHECK(model.ok());
        core::TrainConfig config = TinyConfig(&rng);
        config.nan_abort = true;
        config.inject_inf_grad_at_step = 1;
        core::Trainer trainer(model->get(), &dataset, config);
        trainer.Run();
      },
      ::testing::ExitedWithCode(train_obs::kNanAbortExitCode),
      "nan-abort: non-finite value in grad:");
}

TEST_F(TrainObsTest, InjectedInfWithoutNanAbortOnlyCountsAndContinues) {
  train_obs::SetSentinelsEnabled(true);
  core::EncodedDataset dataset = TinyDataset();
  Rng rng(11);
  auto model = core::CreateModel("emba", TinyBudget(),
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config = TinyConfig(&rng);
  config.max_epochs = 1;
  config.inject_inf_grad_at_step = 0;
  core::Trainer trainer(model->get(), &dataset, config);
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());
  EXPECT_GE(metrics::GetCounter("training.numerics.nonfinite_grads").Value(),
            1u);
  // The offender surfaces on /trainz even without an event log.
  http::HttpRequest req;
  req.method = "GET";
  req.path = "/trainz";
  req.query = "format=json";
  http::HttpResponse json = train_obs::HandleTrainzRequest(req);
  EXPECT_NE(json.body.find("\"last_offender\": \"grad:"), std::string::npos);
}

// ---------- StartRun failure surface ----------

TEST_F(TrainObsTest, UnwritableEventLogPathIsACleanIOError) {
  train_obs::SetEventLogPath("/tmp/emba_no_such_dir_xyz/events.jsonl");
  train_obs::RunInfo info;
  info.dataset = "d";
  info.model = "m";
  Status status = train_obs::StartRun(info);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace emba
