// Parallel-vs-serial equivalence suite for the thread-pool execution layer.
//
// The pool's contract is that thread count is a pure performance knob:
// every parallelized path (tensor kernels, batched scoring, blocking,
// training + evaluation end to end) must produce bit-identical results at
// any thread count. These tests pin that contract with exact equality —
// no tolerances — plus the pool's own semantics (coverage, exception
// propagation, nesting).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "block/blocker.h"
#include "core/registry.h"
#include "core/scoring.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "util/thread_pool.h"

namespace emba {
namespace {

// Restores the default global pool even when a test fails mid-way.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { SetGlobalThreads(0); }
};

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  auto doubled = pool.Submit([] { return 21 * 2; });
  auto text = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "ok");
}

TEST(ThreadPoolTest, SubmitOnSingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  auto result = pool.Submit([] { return 7; });
  EXPECT_EQ(result.get(), 7);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto failing = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100, 1,
                                [](int64_t i) {
                                  if (i == 37) {
                                    throw std::invalid_argument("bad index");
                                  }
                                }),
               std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelForEmptyAndReversedRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 1, [&](int64_t) { ++calls; });
  pool.ParallelFor(5, 5, 2, [&](int64_t) { ++calls; });
  pool.ParallelFor(10, 3, 1, [&](int64_t) { ++calls; });  // end < begin
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  // Odd range sizes and grains that don't divide them evenly.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int64_t count : {1, 2, 7, 63, 1001}) {
      for (int64_t grain : {1, 3, 64}) {
        std::vector<std::atomic<int>> visits(static_cast<size_t>(count));
        for (auto& v : visits) v = 0;
        pool.ParallelFor(0, count, grain,
                         [&](int64_t i) { ++visits[static_cast<size_t>(i)]; });
        for (int64_t i = 0; i < count; ++i) {
          ASSERT_EQ(visits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " count=" << count
              << " grain=" << grain << " index=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunksAreContiguousAndOrderedWithinChunk) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelForChunks(3, 50, 7, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  int64_t expected = 3;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected);
    EXPECT_LT(lo, hi);
    expected = hi;
  }
  EXPECT_EQ(expected, 50);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // Nested call must not re-enter the pool (which could deadlock when all
    // workers are already busy in the outer loop).
    pool.ParallelFor(0, 16, 1, [&](int64_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8 * 16);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvVar) {
  ASSERT_EQ(setenv("EMBA_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), 3);
  ASSERT_EQ(setenv("EMBA_NUM_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1);  // falls back to hardware concurrency
  ASSERT_EQ(unsetenv("EMBA_NUM_THREADS"), 0);
  EXPECT_GE(DefaultThreadCount(), 1);
}

// ---- parallel-vs-serial equivalence: tensor kernels ----

// Exact float equality is required: row partitioning must not change any
// row's accumulation order, so the parallel kernels are bit-identical.
void ExpectTensorsIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "flat index " << i;
  }
}

TEST(ThreadPoolEquivalenceTest, MatMulIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  Rng rng(7);
  // Big enough to clear the parallel threshold; deliberately non-square.
  Tensor a = Tensor::RandomNormal({96, 33}, &rng);
  Tensor b = Tensor::RandomNormal({33, 57}, &rng);
  SetGlobalThreads(1);
  Tensor serial = MatMul(a, b);
  for (int threads : {2, 8}) {
    SetGlobalThreads(threads);
    Tensor parallel = MatMul(a, b);
    ExpectTensorsIdentical(serial, parallel);
  }
}

TEST(ThreadPoolEquivalenceTest, MatMulTransposedBIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  Rng rng(8);
  Tensor a = Tensor::RandomNormal({80, 41}, &rng);
  Tensor b = Tensor::RandomNormal({65, 41}, &rng);
  SetGlobalThreads(1);
  Tensor serial = MatMulTransposedB(a, b);
  for (int threads : {2, 8}) {
    SetGlobalThreads(threads);
    Tensor parallel = MatMulTransposedB(a, b);
    ExpectTensorsIdentical(serial, parallel);
  }
}

TEST(ThreadPoolEquivalenceTest, SmallMatMulStaysOnSerialKernel) {
  GlobalThreadsGuard guard;
  // Below the FLOP threshold the serial kernel runs regardless of pool
  // size; this just pins that the fast path still computes correctly.
  SetGlobalThreads(8);
  Tensor a = Tensor::FromValues(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromValues(2, 2, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

// ---- parallel-vs-serial equivalence: scoring, blocking, end to end ----

core::EncodedDataset SmallEncodedDataset(double size_factor) {
  data::GeneratorOptions options;
  options.seed = 33;
  options.size_factor = size_factor;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
  core::EncodeOptions encode_options;
  encode_options.max_len = 32;
  encode_options.wordpiece_vocab = 600;
  return core::EncodeDataset(dataset, encode_options);
}

core::ModelBudget TinyBudget() {
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 32;
  return budget;
}

TEST(ThreadPoolEquivalenceTest, BatchForwardMatchesSerialForward) {
  GlobalThreadsGuard guard;
  core::EncodedDataset dataset = SmallEncodedDataset(0.3);
  Rng rng(5);
  auto model = core::CreateModel("emba", TinyBudget(),
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  (*model)->SetTraining(false);

  SetGlobalThreads(1);
  std::vector<double> serial =
      core::BatchMatchProbabilities(**model, dataset.test);
  SetGlobalThreads(4);
  std::vector<double> parallel =
      core::BatchMatchProbabilities(**model, dataset.test);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "sample " << i;
  }
}

TEST(ThreadPoolEquivalenceTest, BlockersIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  data::GeneratorOptions options;
  options.seed = 9;
  options.size_factor = 0.5;
  auto dataset = data::MakeWdc(data::WdcCategory::kCameras,
                               data::WdcSize::kSmall, options);
  std::vector<data::Record> left, right;
  for (const auto& pair : dataset.train) {
    left.push_back(pair.left);
    right.push_back(pair.right);
  }

  block::TokenBlocker token_blocker{block::TokenBlockerConfig{}};
  block::MinHashBlocker minhash_blocker{block::MinHashBlockerConfig{}};
  SetGlobalThreads(1);
  auto token_serial = token_blocker.Candidates(left, right);
  auto minhash_serial = minhash_blocker.Candidates(left, right);
  SetGlobalThreads(4);
  EXPECT_EQ(token_blocker.Candidates(left, right), token_serial);
  EXPECT_EQ(minhash_blocker.Candidates(left, right), minhash_serial);
  EXPECT_FALSE(token_serial.empty());
}

// End-to-end determinism: a short training run plus inference must yield
// identical F1 and loss traces at 1 and 4 threads. Training is serial by
// design; evaluation fans out but writes by index — completion order must
// not leak into any number.
TEST(ThreadPoolDeterminismTest, TrainingRunIdenticalAt1And4Threads) {
  GlobalThreadsGuard guard;
  core::EncodedDataset dataset = SmallEncodedDataset(0.5);

  auto run = [&dataset](int threads) {
    SetGlobalThreads(threads);
    Rng rng(11);
    auto model = core::CreateModel("emba", TinyBudget(),
                                   dataset.wordpiece->vocab().size(),
                                   dataset.num_id_classes, &rng);
    EMBA_CHECK(model.ok());
    core::TrainConfig config;
    config.max_epochs = 3;
    config.min_epochs = 1;
    config.seed = 17;
    core::Trainer trainer(model->get(), &dataset, config);
    return trainer.Run();
  };

  core::TrainResult serial = run(1);
  core::TrainResult parallel = run(4);

  EXPECT_EQ(serial.test.em.f1, parallel.test.em.f1);
  EXPECT_EQ(serial.test.em.precision, parallel.test.em.precision);
  EXPECT_EQ(serial.test.em.recall, parallel.test.em.recall);
  EXPECT_EQ(serial.test.id1_accuracy, parallel.test.id1_accuracy);
  EXPECT_EQ(serial.best_valid_f1, parallel.best_valid_f1);
  EXPECT_EQ(serial.epochs_ran, parallel.epochs_ran);
  ASSERT_EQ(serial.epoch_train_loss.size(), parallel.epoch_train_loss.size());
  for (size_t e = 0; e < serial.epoch_train_loss.size(); ++e) {
    EXPECT_EQ(serial.epoch_train_loss[e], parallel.epoch_train_loss[e])
        << "epoch " << e;
  }
  ASSERT_EQ(serial.epoch_valid_f1.size(), parallel.epoch_valid_f1.size());
  for (size_t e = 0; e < serial.epoch_valid_f1.size(); ++e) {
    EXPECT_EQ(serial.epoch_valid_f1[e], parallel.epoch_valid_f1[e])
        << "epoch " << e;
  }
  EXPECT_GT(serial.epoch_train_loss.size(), 0u);
}

// TinyBudget's matmuls sit below the parallel FLOP threshold, so the test
// above exercises pool scheduling but never the row-partitioned kernels
// inside autograd. This budget crosses it — seq(32) x dim(48) x dim(48)
// = 73728 multiply-adds > the 32768 threshold in tensor.cc — so forward
// and backward matmuls run parallel during gradient-enabled training.
TEST(ThreadPoolDeterminismTest, ParallelMatMulTrainingIdenticalAt1And4Threads) {
  GlobalThreadsGuard guard;
  core::EncodedDataset dataset = SmallEncodedDataset(0.3);
  core::ModelBudget budget;
  budget.dim = 48;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 32;

  auto run = [&](int threads) {
    SetGlobalThreads(threads);
    Rng rng(23);
    auto model = core::CreateModel("emba", budget,
                                   dataset.wordpiece->vocab().size(),
                                   dataset.num_id_classes, &rng);
    EMBA_CHECK(model.ok());
    core::TrainConfig config;
    config.max_epochs = 1;
    config.min_epochs = 1;
    config.seed = 29;
    core::Trainer trainer(model->get(), &dataset, config);
    return trainer.Run();
  };

  core::TrainResult serial = run(1);
  core::TrainResult parallel = run(4);

  EXPECT_EQ(serial.test.em.f1, parallel.test.em.f1);
  EXPECT_EQ(serial.best_valid_f1, parallel.best_valid_f1);
  ASSERT_EQ(serial.epoch_train_loss.size(), parallel.epoch_train_loss.size());
  for (size_t e = 0; e < serial.epoch_train_loss.size(); ++e) {
    EXPECT_EQ(serial.epoch_train_loss[e], parallel.epoch_train_loss[e])
        << "epoch " << e;
  }
}

}  // namespace
}  // namespace emba
