// Unit tests for the text module: vocabulary, basic tokenization, WordPiece
// training/segmentation, pair encoding and DITTO serialization.
#include <gtest/gtest.h>

#include <algorithm>

#include "text/pair_encoder.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace emba {
namespace text {
namespace {

TEST(VocabTest, SpecialTokensHaveFixedIds) {
  Vocab vocab;
  EXPECT_EQ(vocab.Id("[PAD]"), SpecialTokens::kPad);
  EXPECT_EQ(vocab.Id("[UNK]"), SpecialTokens::kUnk);
  EXPECT_EQ(vocab.Id("[CLS]"), SpecialTokens::kCls);
  EXPECT_EQ(vocab.Id("[SEP]"), SpecialTokens::kSep);
  EXPECT_EQ(vocab.Id("[MASK]"), SpecialTokens::kMask);
  EXPECT_EQ(vocab.Id("[COL]"), SpecialTokens::kCol);
  EXPECT_EQ(vocab.Id("[VAL]"), SpecialTokens::kVal);
  EXPECT_EQ(vocab.size(), SpecialTokens::kCount);
}

TEST(VocabTest, AddIsIdempotent) {
  Vocab vocab;
  int id1 = vocab.AddToken("sandisk");
  int id2 = vocab.AddToken("sandisk");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(vocab.Token(id1), "sandisk");
  EXPECT_TRUE(vocab.Contains("sandisk"));
  EXPECT_FALSE(vocab.Contains("transcend"));
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab vocab;
  EXPECT_EQ(vocab.Id("never-seen"), SpecialTokens::kUnk);
}

TEST(VocabTest, TextRoundTrip) {
  Vocab vocab;
  vocab.AddToken("alpha");
  vocab.AddToken("##lph");
  auto restored = Vocab::FromText(vocab.ToText());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), vocab.size());
  EXPECT_EQ(restored->Id("##lph"), vocab.Id("##lph"));
}

TEST(BasicTokenizeTest, LowercasesAndSplitsPunctuation) {
  auto tokens = BasicTokenize("SanDisk SDCFH-004G, retail!");
  std::vector<std::string> expected = {"sandisk", "sdcfh", "-",     "004g",
                                       ",",       "retail", "!"};
  EXPECT_EQ(tokens, expected);
}

TEST(BasicTokenizeTest, PreservesSpecialTokens) {
  auto tokens = BasicTokenize("[COL] title [VAL] 4gb card");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "[COL]");
  EXPECT_EQ(tokens[2], "[VAL]");
}

TEST(BasicTokenizeTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(BasicTokenize("").empty());
  EXPECT_TRUE(BasicTokenize("  \t\n ").empty());
}

class WordPieceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::string> corpus;
    for (int i = 0; i < 30; ++i) {
      corpus.push_back("sandisk compactflash card 4gb retail");
      corpus.push_back("transcend compactflash card 8gb retail");
      corpus.push_back("kingston memory card 16gb");
    }
    WordPieceConfig config;
    config.vocab_size = 200;
    wordpiece_ = std::make_unique<WordPiece>(WordPiece::Train(corpus, config));
  }

  std::unique_ptr<WordPiece> wordpiece_;
};

TEST_F(WordPieceTest, FrequentWordsBecomeSingleTokens) {
  auto pieces = wordpiece_->SegmentWord("compactflash");
  EXPECT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "compactflash");
}

TEST_F(WordPieceTest, UnseenWordSplitsIntoPieces) {
  // All characters are in-vocab, so an unseen word splits rather than UNKs.
  auto pieces = wordpiece_->SegmentWord("sandiskt");
  EXPECT_GT(pieces.size(), 1u);
  // Continuation pieces carry the "##" prefix.
  for (size_t i = 1; i < pieces.size(); ++i) {
    EXPECT_EQ(pieces[i].substr(0, 2), "##");
  }
}

TEST_F(WordPieceTest, SegmentationIsLossless) {
  // Re-joining the pieces (stripping "##") reproduces the word.
  for (const std::string word : {"sandisk", "cardish", "transcendent"}) {
    auto pieces = wordpiece_->SegmentWord(word);
    if (pieces.size() == 1 && pieces[0] == "[UNK]") continue;
    std::string joined;
    for (const auto& p : pieces) {
      joined += p.substr(0, 2) == "##" ? p.substr(2) : p;
    }
    EXPECT_EQ(joined, word);
  }
}

TEST_F(WordPieceTest, UnknownCharacterYieldsUnk) {
  auto pieces = wordpiece_->SegmentWord("xyz~q");  // '~' never in corpus
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "[UNK]");
}

TEST_F(WordPieceTest, EncodeProducesIds) {
  auto ids = wordpiece_->Encode("sandisk card");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_GE(ids[0], SpecialTokens::kCount);
  EXPECT_NE(ids[0], ids[1]);
}

TEST_F(WordPieceTest, AlignmentMapsPiecesToWords) {
  std::vector<std::string> pieces;
  std::vector<int> word_index;
  wordpiece_->TokenizeWithAlignment("sandisk compactflash", &pieces,
                                    &word_index);
  ASSERT_EQ(pieces.size(), word_index.size());
  EXPECT_EQ(word_index.front(), 0);
  EXPECT_EQ(word_index.back(), 1);
}

TEST_F(WordPieceTest, TrainRespectsVocabTarget) {
  EXPECT_LE(wordpiece_->vocab().size(), 200);
}

class PairEncoderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::string> corpus = {
        "sandisk compactflash card retail",
        "transcend compactflash card retail",
    };
    WordPieceConfig config;
    config.vocab_size = 150;
    wordpiece_ = std::make_unique<WordPiece>(WordPiece::Train(corpus, config));
  }

  std::unique_ptr<WordPiece> wordpiece_;
};

TEST_F(PairEncoderTest, StructureOfEncodedPair) {
  PairEncoder encoder(wordpiece_.get(), 32);
  EncodedPair pair = encoder.Encode("sandisk card", "transcend card");
  ASSERT_GE(pair.length(), 5);
  EXPECT_EQ(pair.token_ids.front(), SpecialTokens::kCls);
  EXPECT_EQ(pair.token_ids.back(), SpecialTokens::kSep);
  EXPECT_EQ(pair.token_ids[static_cast<size_t>(pair.e1_end)],
            SpecialTokens::kSep);
  // Segments: 0 through the first [SEP], 1 afterwards.
  for (int i = 0; i <= pair.e1_end; ++i) {
    EXPECT_EQ(pair.segment_ids[static_cast<size_t>(i)], 0);
  }
  for (int i = pair.e2_begin; i < pair.length(); ++i) {
    EXPECT_EQ(pair.segment_ids[static_cast<size_t>(i)], 1);
  }
  // Specials have word_index -1; entity tokens map to words.
  EXPECT_EQ(pair.word_index.front(), -1);
  EXPECT_GE(pair.word_index[static_cast<size_t>(pair.e1_begin)], 0);
  EXPECT_EQ(pair.e1_word_count, 2);
}

TEST_F(PairEncoderTest, TruncatesLongerEntityFirst) {
  PairEncoder encoder(wordpiece_.get(), 12);
  std::string long_desc =
      "sandisk compactflash card retail sandisk compactflash card retail "
      "sandisk compactflash card retail";
  EncodedPair pair = encoder.Encode(long_desc, "transcend card");
  EXPECT_LE(pair.length(), 12);
  // The short entity survives intact (2 words).
  EXPECT_GE(pair.e2_end - pair.e2_begin, 2);
}

TEST_F(PairEncoderTest, TruncationNeverEmptiesAnEntitySpan) {
  // Regression: with one very long and one short entity under a tight
  // budget, the old trim loop could pop the short entity to zero pieces,
  // handing AOA an m=0/n=0 interaction matrix. Each span must keep >= 1.
  PairEncoder encoder(wordpiece_.get(), 8);  // budget of 5 entity pieces
  std::string long_desc =
      "sandisk compactflash card retail sandisk compactflash card retail";
  const std::vector<std::pair<std::string, std::string>> cases = {
      {long_desc, "card"}, {"card", long_desc}, {long_desc, long_desc}};
  for (const auto& [d1, d2] : cases) {
    EncodedPair pair = encoder.Encode(d1, d2);
    EXPECT_LE(pair.length(), 8);
    EXPECT_GT(pair.e1_end, pair.e1_begin) << d1 << " | " << d2;
    EXPECT_GT(pair.e2_end, pair.e2_begin) << d1 << " | " << d2;
  }
}

TEST_F(PairEncoderTest, EmptyInputBecomesUnk) {
  // Regression: an empty (or all-whitespace) description used to produce an
  // empty entity span; it now encodes as a single [UNK] piece.
  PairEncoder encoder(wordpiece_.get(), 16);
  for (const auto& empty : {std::string(), std::string("   \t ")}) {
    EncodedPair pair = encoder.Encode(empty, "sandisk card");
    EXPECT_EQ(pair.e1_end - pair.e1_begin, 1);
    EXPECT_EQ(pair.token_ids[static_cast<size_t>(pair.e1_begin)],
              SpecialTokens::kUnk);
    EXPECT_GT(pair.e2_end, pair.e2_begin);
    // The reverse order too, plus both-empty.
    EncodedPair swapped = encoder.Encode("sandisk card", empty);
    EXPECT_EQ(swapped.e2_end - swapped.e2_begin, 1);
    EXPECT_EQ(swapped.token_ids[static_cast<size_t>(swapped.e2_begin)],
              SpecialTokens::kUnk);
    EncodedPair both = encoder.Encode(empty, empty);
    EXPECT_EQ(both.e1_end - both.e1_begin, 1);
    EXPECT_EQ(both.e2_end - both.e2_begin, 1);
    EXPECT_EQ(both.e1_word_count, 1);
  }
  EncodedPair single = encoder.EncodeSingle("");
  EXPECT_EQ(single.e1_end - single.e1_begin, 1);
  EXPECT_EQ(single.token_ids[static_cast<size_t>(single.e1_begin)],
            SpecialTokens::kUnk);
}

TEST_F(PairEncoderTest, EncodeSingle) {
  PairEncoder encoder(wordpiece_.get(), 16);
  EncodedPair single = encoder.EncodeSingle("sandisk card");
  EXPECT_EQ(single.token_ids.front(), SpecialTokens::kCls);
  EXPECT_EQ(single.token_ids.back(), SpecialTokens::kSep);
  EXPECT_EQ(single.e2_begin, single.e2_end);
}

TEST(SerializeTest, DittoInjectsStructuralTags) {
  std::vector<std::pair<std::string, std::string>> attrs = {
      {"title", "4gb card"}, {"brand", "sandisk"}};
  EXPECT_EQ(SerializeDitto(attrs),
            "[COL] title [VAL] 4gb card [COL] brand [VAL] sandisk");
  EXPECT_EQ(SerializePlain(attrs), "4gb card sandisk");
}

TEST(SerializeTest, PlainSkipsEmptyValues) {
  std::vector<std::pair<std::string, std::string>> attrs = {
      {"title", "card"}, {"brand", ""}};
  EXPECT_EQ(SerializePlain(attrs), "card");
}

TEST(SerializeTest, DittoTagsSurviveTokenization) {
  std::vector<std::string> corpus = {"[COL] title [VAL] card"};
  WordPieceConfig config;
  config.vocab_size = 80;
  WordPiece wordpiece = WordPiece::Train(corpus, config);
  auto pieces = wordpiece.Tokenize("[COL] title [VAL] card");
  ASSERT_GE(pieces.size(), 4u);
  // The tags survive atomically regardless of how the words segment.
  EXPECT_EQ(pieces[0], "[COL]");
  EXPECT_EQ(std::count(pieces.begin(), pieces.end(), "[VAL]"), 1);
  EXPECT_EQ(std::count(pieces.begin(), pieces.end(), "[COL]"), 1);
}

}  // namespace
}  // namespace text
}  // namespace emba
