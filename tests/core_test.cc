// Unit tests for the core module: AOA invariants, metrics, the t-test,
// dataset encoding, the model registry and per-model forward contracts.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "core/aoa.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "core/sample.h"
#include "core/stats.h"
#include "data/generator.h"

namespace emba {
namespace core {
namespace {

// ---------- AOA ----------

TEST(AoaTest, ShapesMatchPaper) {
  Rng rng(1);
  ag::Var e1(Tensor::RandomNormal({4, 6}, &rng));
  ag::Var e2(Tensor::RandomNormal({7, 6}, &rng));
  AoaOutput out = AttentionOverAttention(e1, e2);
  EXPECT_EQ(out.pooled.size(), 6);   // x in R^h
  EXPECT_EQ(out.gamma.size(), 4);    // gamma in R^m
  EXPECT_EQ(out.beta_bar.size(), 7); // beta_bar in R^n
}

TEST(AoaTest, GammaIsAProbabilityLikeWeighting) {
  // gamma = alpha^T beta_bar with alpha columns summing to 1 over m and
  // beta_bar a distribution over n => gamma entries positive, sum 1.
  Rng rng(2);
  ag::Var e1(Tensor::RandomNormal({5, 8}, &rng));
  ag::Var e2(Tensor::RandomNormal({3, 8}, &rng));
  AoaOutput out = AttentionOverAttention(e1, e2);
  double sum = 0.0;
  for (int64_t i = 0; i < out.gamma.size(); ++i) {
    EXPECT_GT(out.gamma.value()[i], 0.0f);
    sum += out.gamma.value()[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
  double bsum = 0.0;
  for (int64_t i = 0; i < out.beta_bar.size(); ++i) {
    bsum += out.beta_bar.value()[i];
  }
  EXPECT_NEAR(bsum, 1.0, 1e-4);
}

TEST(AoaTest, PooledIsConvexCombinationOfE1Rows) {
  Rng rng(3);
  ag::Var e1(Tensor::RandomNormal({4, 5}, &rng));
  ag::Var e2(Tensor::RandomNormal({6, 5}, &rng));
  AoaOutput out = AttentionOverAttention(e1, e2);
  // x = E1^T gamma: recompute manually.
  for (int64_t c = 0; c < 5; ++c) {
    double acc = 0.0;
    for (int64_t r = 0; r < 4; ++r) {
      acc += e1.value().at(r, c) * out.gamma.value()[r];
    }
    EXPECT_NEAR(out.pooled.value()[c], acc, 1e-4);
  }
}

TEST(AoaTest, AlignedTokenDominatesGamma) {
  // Construct e2 highly similar to e1 row 2 only: gamma should peak there.
  Tensor e1t = Tensor::Zeros({3, 4});
  e1t.at(0, 0) = 1.0f;
  e1t.at(1, 1) = 1.0f;
  e1t.at(2, 2) = 5.0f;
  Tensor e2t = Tensor::Zeros({2, 4});
  e2t.at(0, 2) = 5.0f;
  e2t.at(1, 2) = 5.0f;
  AoaOutput out = AttentionOverAttention(ag::Var(e1t), ag::Var(e2t));
  EXPECT_GT(out.gamma.value()[2], out.gamma.value()[0]);
  EXPECT_GT(out.gamma.value()[2], out.gamma.value()[1]);
}

TEST(AoaTest, DegenerateSingleTokenSpansStayFiniteAndNormalized) {
  // Regression for the PairEncoder truncation fix: the smallest spans the
  // encoder can now produce are m=1 / n=1 (e.g. an empty description mapped
  // to [UNK], or an entity truncated down to one piece). AOA must stay
  // well-defined there: softmaxes over a single element are exactly 1.
  Rng rng(7);
  const std::vector<std::pair<int64_t, int64_t>> shapes = {
      {1, 5}, {5, 1}, {1, 1}};
  for (const auto& [m, n] : shapes) {
    ag::Var e1(Tensor::RandomNormal({m, 4}, &rng));
    ag::Var e2(Tensor::RandomNormal({n, 4}, &rng));
    AoaOutput out = AttentionOverAttention(e1, e2);
    EXPECT_EQ(out.pooled.size(), 4);
    EXPECT_EQ(out.gamma.size(), m);
    EXPECT_EQ(out.beta_bar.size(), n);
    EXPECT_TRUE(out.pooled.value().AllFinite());
    double gamma_sum = 0.0;
    for (int64_t i = 0; i < m; ++i) gamma_sum += out.gamma.value()[i];
    EXPECT_NEAR(gamma_sum, 1.0, 1e-4) << "m=" << m << " n=" << n;
  }
}

TEST(AoaTest, GradcheckOnDegenerateSpans) {
  Rng rng(8);
  const std::vector<std::pair<int64_t, int64_t>> shapes = {
      {1, 4}, {4, 1}, {1, 1}};
  for (const auto& [m, n] : shapes) {
    auto fn = [](const std::vector<ag::Var>& v) {
      return ag::MeanAll(AttentionOverAttention(v[0], v[1]).pooled);
    };
    ag::GradCheckResult result = ag::CheckGradients(
        fn,
        {ag::Parameter(Tensor::RandomNormal({m, 3}, &rng)),
         ag::Parameter(Tensor::RandomNormal({n, 3}, &rng))},
        1e-2, 5e-2);
    EXPECT_TRUE(result.ok) << "m=" << m << " n=" << n
                           << " max_abs_error=" << result.max_abs_error
                           << " max_rel_error=" << result.max_rel_error;
  }
}

TEST(AoaTest, GradientsFlowToBothEntities) {
  Rng rng(4);
  ag::Var e1 = ag::Parameter(Tensor::RandomNormal({3, 4}, &rng));
  ag::Var e2 = ag::Parameter(Tensor::RandomNormal({5, 4}, &rng));
  AoaOutput out = AttentionOverAttention(e1, e2);
  ag::MeanAll(out.pooled).Backward();
  EXPECT_GT(e1.grad().Norm(), 0.0f);
  EXPECT_GT(e2.grad().Norm(), 0.0f);
}

// ---------- metrics ----------

TEST(MetricsTest, PerfectPrediction) {
  std::vector<bool> y = {true, false, true, false};
  BinaryMetrics m = ComputeBinaryMetrics(y, y);
  EXPECT_EQ(m.precision, 1.0);
  EXPECT_EQ(m.recall, 1.0);
  EXPECT_EQ(m.f1, 1.0);
  EXPECT_EQ(m.accuracy, 1.0);
}

TEST(MetricsTest, KnownConfusion) {
  std::vector<bool> y_true = {true, true, false, false, true};
  std::vector<bool> y_pred = {true, false, true, false, true};
  BinaryMetrics m = ComputeBinaryMetrics(y_true, y_pred);
  EXPECT_EQ(m.tp, 2);
  EXPECT_EQ(m.fn, 1);
  EXPECT_EQ(m.fp, 1);
  EXPECT_EQ(m.tn, 1);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.f1, 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, DegenerateNoPositivePredictions) {
  std::vector<bool> y_true = {true, false};
  std::vector<bool> y_pred = {false, false};
  BinaryMetrics m = ComputeBinaryMetrics(y_true, y_pred);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(MetricsTest, AccuracyAndMacroF1) {
  std::vector<int> y_true = {0, 0, 1, 1, 2};
  std::vector<int> y_pred = {0, 1, 1, 1, 0};
  EXPECT_NEAR(Accuracy(y_true, y_pred), 0.6, 1e-9);
  // class 0: p=1/2, r=1/2, f1=1/2; class 1: p=2/3, r=1, f1=0.8;
  // class 2: f1=0 => macro = (0.5 + 0.8 + 0) / 3
  EXPECT_NEAR(MacroF1(y_true, y_pred), (0.5 + 0.8 + 0.0) / 3.0, 1e-9);
}

TEST(MetricsTest, MacroF1PerfectIsOne) {
  std::vector<int> y = {3, 1, 4, 1, 5};
  EXPECT_NEAR(MacroF1(y, y), 1.0, 1e-12);
}

// ---------- stats ----------

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(Mean(v), 5.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, IncompleteBetaEdgeValues) {
  EXPECT_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
  // I_x(1,1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.37), 0.37, 1e-9);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, 0.3),
              1.0 - RegularizedIncompleteBeta(4.0, 2.5, 0.7), 1e-9);
}

TEST(StatsTest, WelchTTestDetectsClearDifference) {
  std::vector<double> a = {98.1, 98.4, 98.2, 98.6, 98.3};
  std::vector<double> b = {95.0, 95.8, 95.2, 95.9, 95.4};
  TTestResult result = WelchTTestGreater(a, b);
  EXPECT_GT(result.t, 5.0);
  EXPECT_LT(result.p_value, 0.001);
}

TEST(StatsTest, WelchTTestNotSignificantWhenOverlapping) {
  std::vector<double> a = {94.0, 95.0, 96.0, 93.5, 95.5};
  std::vector<double> b = {94.2, 94.8, 95.9, 93.8, 95.2};
  TTestResult result = WelchTTestGreater(a, b);
  EXPECT_GE(result.p_value, 0.05);
}

TEST(StatsTest, OneTailedDirectionality) {
  std::vector<double> low = {1.0, 1.1, 0.9, 1.05};
  std::vector<double> high = {2.0, 2.1, 1.9, 2.05};
  EXPECT_GT(WelchTTestGreater(low, high).p_value, 0.95);
  EXPECT_LT(WelchTTestGreater(high, low).p_value, 0.05);
}

TEST(StatsTest, SignificanceStars) {
  EXPECT_EQ(SignificanceStars(0.00005), "****");
  EXPECT_EQ(SignificanceStars(0.0005), "***");
  EXPECT_EQ(SignificanceStars(0.005), "**");
  EXPECT_EQ(SignificanceStars(0.03), "*");
  EXPECT_EQ(SignificanceStars(0.2), "ns");
}

// ---------- encoding ----------

class EncodingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions options;
    options.size_factor = 0.5;
    dataset_ = data::MakeWdc(data::WdcCategory::kComputers,
                             data::WdcSize::kSmall, options);
  }
  data::EmDataset dataset_;
};

TEST_F(EncodingTest, EncodesAllSplits) {
  EncodeOptions options;
  options.max_len = 32;
  EncodedDataset encoded = EncodeDataset(dataset_, options);
  EXPECT_EQ(encoded.train.size(), dataset_.train.size());
  EXPECT_EQ(encoded.test.size(), dataset_.test.size());
  EXPECT_EQ(encoded.num_id_classes, dataset_.num_id_classes);
  for (const auto& sample : encoded.train) {
    EXPECT_LE(sample.enc.length(), 32);
    EXPECT_GT(sample.enc.e1_end, sample.enc.e1_begin);
    EXPECT_GT(sample.enc.e2_end, sample.enc.e2_begin);
    EXPECT_FALSE(sample.words1.empty());
    EXPECT_FALSE(sample.words2.empty());
  }
}

TEST_F(EncodingTest, DittoStyleInjectsTags) {
  EncodeOptions options;
  options.max_len = 48;
  options.style = InputStyle::kDitto;
  EncodedDataset encoded = EncodeDataset(dataset_, options);
  bool found_col = false;
  for (int id : encoded.train[0].enc.token_ids) {
    if (id == text::SpecialTokens::kCol) found_col = true;
  }
  EXPECT_TRUE(found_col);
}

// ---------- registry / model forward contracts ----------

class ModelForwardTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    data::GeneratorOptions options;
    options.size_factor = 0.5;
    auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                                 data::WdcSize::kSmall, options);
    EncodeOptions encode_options;
    encode_options.max_len = 32;
    encoded_ = EncodeDataset(dataset, encode_options);
  }
  EncodedDataset encoded_;
};

TEST_P(ModelForwardTest, ForwardProducesValidLogits) {
  Rng rng(21);
  ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 32;
  auto model = CreateModel(GetParam(), budget, encoded_.wordpiece->vocab().size(),
                           encoded_.num_id_classes, &rng);
  ASSERT_TRUE(model.ok()) << model.status();
  (*model)->SetTraining(false);
  ag::NoGradGuard guard;
  ModelOutput out = (*model)->Forward(encoded_.train[0]);
  ASSERT_TRUE(out.em_logits.defined());
  EXPECT_EQ(out.em_logits.size(), 2);
  EXPECT_TRUE(out.em_logits.value().AllFinite());
  if ((*model)->has_aux_heads()) {
    ASSERT_TRUE(out.id1_logits.defined());
    EXPECT_EQ(out.id1_logits.size(), encoded_.num_id_classes);
    EXPECT_EQ(out.id2_logits.size(), encoded_.num_id_classes);
    EXPECT_TRUE(out.id1_logits.value().AllFinite());
  } else {
    EXPECT_FALSE(out.id1_logits.defined());
  }
  EXPECT_EQ((*model)->name(), GetParam());
}

TEST_P(ModelForwardTest, LossBackwardTouchesParameters) {
  Rng rng(22);
  ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 32;
  auto model = CreateModel(GetParam(), budget, encoded_.wordpiece->vocab().size(),
                           encoded_.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  (*model)->SetTraining(true);
  ModelOutput out = (*model)->Forward(encoded_.train[0]);
  ag::Var loss = ag::BinaryCrossEntropyFromLogits(
      out.em_logits, encoded_.train[0].match ? 1 : 0);
  loss.Backward();
  int with_grad = 0;
  for (const auto& p : (*model)->Parameters()) with_grad += p.has_grad();
  EXPECT_GT(with_grad, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelForwardTest,
    ::testing::Values("bert", "roberta", "ditto", "jointbert", "jointbert_s",
                      "jointbert_t", "jointbert_ct", "emba", "emba_cls",
                      "emba_surfcon", "emba_padded", "emba_sb", "emba_db",
                      "emba_ft", "deepmatcher", "jointmatcher"));

TEST(RegistryTest, UnknownModelRejected) {
  Rng rng(1);
  ModelBudget budget;
  EXPECT_FALSE(CreateModel("gpt7", budget, 100, 5, &rng).ok());
}

TEST(RegistryTest, NameListsAreConsistent) {
  auto all = AllModelNames();
  EXPECT_EQ(all.size(), 10u);
  auto ablations = AblationModelNames();
  EXPECT_EQ(ablations.back(), "emba");
  EXPECT_TRUE(ModelUsesDittoInput("ditto"));
  EXPECT_FALSE(ModelUsesDittoInput("emba"));
}

TEST(RegistryTest, DefaultLearningRatesPerFamily) {
  // Outcome of the paper's per-model LR sweep at this scale: the
  // non-contextual fastText models need a much larger step size.
  EXPECT_GT(DefaultLearningRate("emba_ft"), DefaultLearningRate("emba"));
  EXPECT_GT(DefaultLearningRate("deepmatcher"), DefaultLearningRate("bert"));
  EXPECT_EQ(DefaultLearningRate("jointbert"), DefaultLearningRate("emba"));
}

TEST(RegistryTest, SbVariantIsSmaller) {
  Rng rng(2);
  ModelBudget budget;
  budget.dim = 32;
  budget.layers = 2;
  budget.heads = 4;
  budget.max_len = 32;
  auto emba = CreateModel("emba", budget, 300, 10, &rng);
  auto sb = CreateModel("emba_sb", budget, 300, 10, &rng);
  ASSERT_TRUE(emba.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_LT((*sb)->ParameterCount(), (*emba)->ParameterCount());
}

}  // namespace
}  // namespace core
}  // namespace emba
