// Unit tests for the autograd engine: known-gradient spot checks, graph
// mechanics (accumulation, reuse, no-grad mode), and loss functions.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/var.h"

namespace emba {
namespace ag {
namespace {

constexpr float kTol = 1e-4f;

TEST(VarTest, ConstantsDoNotRequireGrad) {
  Var c(Tensor::FromVector({1, 2}));
  EXPECT_FALSE(c.requires_grad());
  Var p = Parameter(Tensor::FromVector({1, 2}));
  EXPECT_TRUE(p.requires_grad());
}

TEST(VarTest, AddBackward) {
  Var a = Parameter(Tensor::FromVector({1, 2}));
  Var b = Parameter(Tensor::FromVector({3, 4}));
  Var loss = MeanAll(Add(a, b));
  loss.Backward();
  EXPECT_NEAR(a.grad()[0], 0.5f, kTol);
  EXPECT_NEAR(b.grad()[1], 0.5f, kTol);
}

TEST(VarTest, SubBackwardNegatesSecond) {
  Var a = Parameter(Tensor::FromVector({5}));
  Var b = Parameter(Tensor::FromVector({2}));
  Var loss = MeanAll(Sub(a, b));
  loss.Backward();
  EXPECT_NEAR(a.grad()[0], 1.0f, kTol);
  EXPECT_NEAR(b.grad()[0], -1.0f, kTol);
}

TEST(VarTest, MulBackwardIsCrossValue) {
  Var a = Parameter(Tensor::FromVector({3}));
  Var b = Parameter(Tensor::FromVector({7}));
  Var loss = MeanAll(Mul(a, b));
  loss.Backward();
  EXPECT_NEAR(a.grad()[0], 7.0f, kTol);
  EXPECT_NEAR(b.grad()[0], 3.0f, kTol);
}

TEST(VarTest, SharedSubexpressionAccumulates) {
  Var a = Parameter(Tensor::FromVector({2}));
  // loss = mean(a*a) => dloss/da = 2a = 4
  Var loss = MeanAll(Mul(a, a));
  loss.Backward();
  EXPECT_NEAR(a.grad()[0], 4.0f, kTol);
}

TEST(VarTest, MatMulBackwardShapes) {
  Rng rng(1);
  Var a = Parameter(Tensor::RandomNormal({2, 3}, &rng));
  Var b = Parameter(Tensor::RandomNormal({3, 4}, &rng));
  Var loss = MeanAll(MatMul(a, b));
  loss.Backward();
  EXPECT_EQ(a.grad().shape(), a.value().shape());
  EXPECT_EQ(b.grad().shape(), b.value().shape());
}

TEST(VarTest, NoGradGuardDisablesRecording) {
  Var a = Parameter(Tensor::FromVector({1}));
  {
    NoGradGuard guard;
    Var out = Mul(a, a);
    EXPECT_FALSE(out.requires_grad());
  }
  Var out = Mul(a, a);
  EXPECT_TRUE(out.requires_grad());
}

TEST(VarTest, ZeroGradResets) {
  Var a = Parameter(Tensor::FromVector({2}));
  Var loss = MeanAll(Mul(a, a));
  loss.Backward();
  EXPECT_GT(std::fabs(a.grad()[0]), 0.0f);
  a.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0f);
}

TEST(VarTest, BackwardTwiceAccumulates) {
  Var a = Parameter(Tensor::FromVector({2}));
  Var loss1 = MeanAll(Mul(a, a));
  loss1.Backward();
  Var loss2 = MeanAll(Mul(a, a));
  loss2.Backward();
  EXPECT_NEAR(a.grad()[0], 8.0f, kTol);
}

TEST(VarTest, SoftmaxBackwardZeroForUniformUpstream) {
  // d/dx softmax with uniform upstream gradient is 0 (softmax is
  // shift-invariant): y*(g - sum(g*y)) with g constant == y*(g - g) == 0.
  Var x = Parameter(Tensor::FromVector({1, 2, 3}));
  Var loss = MeanAll(SoftmaxRows(x));
  loss.Backward();
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(x.grad()[i], 0.0f, kTol);
}

TEST(VarTest, CrossEntropyGradientIsSoftmaxMinusOneHot) {
  Var logits = Parameter(Tensor::FromVector({0.5f, -0.2f, 1.0f}));
  Var loss = CrossEntropyFromLogits(logits, 2);
  loss.Backward();
  Tensor probs = emba::SoftmaxRows(logits.value());
  EXPECT_NEAR(logits.grad()[0], probs[0], kTol);
  EXPECT_NEAR(logits.grad()[1], probs[1], kTol);
  EXPECT_NEAR(logits.grad()[2], probs[2] - 1.0f, kTol);
}

TEST(VarTest, CrossEntropyValueMatchesManual) {
  Var logits(Tensor::FromVector({1.0f, 2.0f}));
  Var loss = CrossEntropyFromLogits(logits, 0);
  const double denominator = std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(loss.item(), -std::log(std::exp(1.0) / denominator), 1e-4);
}

TEST(VarTest, BinaryCrossEntropyRequiresTwoLogits) {
  Var logits = Parameter(Tensor::FromVector({0.3f, -0.3f}));
  Var loss = BinaryCrossEntropyFromLogits(logits, 1);
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(VarTest, EmbeddingLookupScattersGrad) {
  Rng rng(2);
  Var table = Parameter(Tensor::RandomNormal({5, 3}, &rng));
  Var out = EmbeddingLookup(table, {1, 1, 4});
  Var loss = MeanAll(out);
  loss.Backward();
  const float unit = 1.0f / 9.0f;  // mean over 9 elements
  // Row 1 used twice, row 4 once, others untouched.
  EXPECT_NEAR(table.grad().at(1, 0), 2 * unit, kTol);
  EXPECT_NEAR(table.grad().at(4, 2), unit, kTol);
  EXPECT_NEAR(table.grad().at(0, 0), 0.0f, kTol);
}

TEST(VarTest, DropoutTrainingScalesAndMasks) {
  Rng rng(3);
  Var x = Parameter(Tensor::Ones({1000}));
  Var dropped = Dropout(x, 0.5f, &rng, /*training=*/true);
  int zeros = 0;
  for (int64_t i = 0; i < dropped.size(); ++i) {
    float v = dropped.value()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < kTol);
    zeros += v == 0.0f;
  }
  EXPECT_NEAR(zeros, 500, 60);
  // Inference: identity.
  Var same = Dropout(x, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(same.node().get(), x.node().get());
}

TEST(VarTest, SlicingBackwardHitsOnlySlice) {
  Rng rng(4);
  Var x = Parameter(Tensor::RandomNormal({4, 4}, &rng));
  Var loss = MeanAll(RowSlice(x, 1, 3));
  loss.Backward();
  EXPECT_EQ(x.grad().at(0, 0), 0.0f);
  EXPECT_GT(std::fabs(x.grad().at(1, 0)), 0.0f);
  EXPECT_EQ(x.grad().at(3, 3), 0.0f);
}

TEST(VarTest, PickRowAndDot) {
  Var x = Parameter(Tensor::FromValues(2, 2, {1, 2, 3, 4}));
  Var row = PickRow(x, 1);
  EXPECT_EQ(row.value()[0], 3.0f);
  Var y = Parameter(Tensor::FromVector({5, 6}));
  Var d = Dot(row, y);
  EXPECT_NEAR(d.item(), 3 * 5 + 4 * 6, kTol);
  d.Backward();
  EXPECT_NEAR(y.grad()[0], 3.0f, kTol);
  EXPECT_NEAR(x.grad().at(1, 0), 5.0f, kTol);
  EXPECT_NEAR(x.grad().at(0, 0), 0.0f, kTol);
}

TEST(VarTest, ConcatColsBackwardSplitsGrad) {
  Var a = Parameter(Tensor::FromValues(2, 1, {1, 2}));
  Var b = Parameter(Tensor::FromValues(2, 2, {3, 4, 5, 6}));
  Var loss = MeanAll(ConcatCols({a, b}));
  loss.Backward();
  EXPECT_NEAR(a.grad().at(0, 0), 1.0f / 6.0f, kTol);
  EXPECT_NEAR(b.grad().at(1, 1), 1.0f / 6.0f, kTol);
}

TEST(VarTest, LayerNormOutputIsNormalized) {
  Rng rng(5);
  Var x = Parameter(Tensor::RandomNormal({3, 16}, &rng, 5.0f, 2.0f));
  Var gamma = Parameter(Tensor::Ones({16}));
  Var beta = Parameter(Tensor::Zeros({16}));
  Var out = LayerNormRows(x, gamma, beta);
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t c = 0; c < 16; ++c) mean += out.value().at(r, c);
    mean /= 16.0;
    for (int64_t c = 0; c < 16; ++c) {
      double d = out.value().at(r, c) - mean;
      var += d * d;
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(VarTest, AddNSumsAllTerms) {
  Var a = Parameter(Tensor::FromVector({1}));
  Var b = Parameter(Tensor::FromVector({2}));
  Var c = Parameter(Tensor::FromVector({3}));
  Var total = AddN({a, b, c});
  EXPECT_NEAR(total.item(), 6.0f, kTol);
  total.Backward();
  EXPECT_NEAR(a.grad()[0], 1.0f, kTol);
  EXPECT_NEAR(c.grad()[0], 1.0f, kTol);
}

TEST(VarTest, ReshapeBackwardRestoresShape) {
  Var x = Parameter(Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6}));
  Var loss = MeanAll(Reshape(x, {3, 2}));
  loss.Backward();
  EXPECT_EQ(x.grad().shape(), x.value().shape());
}

TEST(VarTest, DeepChainBackwardDoesNotOverflow) {
  // Iterative DFS must handle long chains (recursive DFS would blow the
  // stack around tens of thousands of nodes).
  Var x = Parameter(Tensor::FromVector({0.5f}));
  Var y = x;
  for (int i = 0; i < 20000; ++i) y = Scale(y, 1.0f);
  Var loss = MeanAll(y);
  loss.Backward();
  EXPECT_NEAR(x.grad()[0], 1.0f, kTol);
}

}  // namespace
}  // namespace ag
}  // namespace emba
