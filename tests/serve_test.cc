// Tier-1 tests for the online matching service (src/serve/): the
// DynamicBatcher's formation paths (batch-full fire, deadline fire, drain
// flush), its admission control (queue-overflow 429, draining 503,
// all-or-nothing group admission), the serving layer's core equivalence
// contract — a score obtained through any dynamically formed cross-request
// batch is bit-identical to the standalone single-pair forward — plus the
// HTTP surface: /match and /dedupe against offline references, 4xx mapping
// for malformed bodies, Retry-After on overflow, the SIGTERM drain
// protocol, and /metrics consistency under concurrent scoring.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <clocale>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "core/scoring.h"
#include "data/generator.h"
#include "pipeline/dedupe.h"
#include "serve/batcher.h"
#include "serve/json.h"
#include "serve/service.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/request_trace.h"

namespace emba {
namespace {

// ---------------------------------------------------------------------------
// Tiny blocking HTTP client (tests only): one request, Connection: close.

struct HttpResult {
  int status = 0;
  std::string body;
  std::map<std::string, std::string> headers;  // lowercased names
};

Result<HttpResult> HttpRoundTrip(int port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::IOError("connect(port " + std::to_string(port) + ")");
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return Status::IOError("send()");
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  const size_t header_end = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/1.1 ", 0) != 0 || header_end == std::string::npos) {
    return Status::IOError("malformed response: " + raw.substr(0, 64));
  }
  HttpResult result;
  result.status = std::atoi(raw.c_str() + std::strlen("HTTP/1.1 "));
  result.body = raw.substr(header_end + 4);
  size_t line_start = raw.find("\r\n") + 2;
  while (line_start < header_end) {
    const size_t line_end = raw.find("\r\n", line_start);
    const std::string line = raw.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      result.headers[name] = line.substr(value_start);
    }
    line_start = line_end + 2;
  }
  return result;
}

Result<HttpResult> HttpPost(int port, const std::string& target,
                            const std::string& body) {
  return HttpRoundTrip(
      port, "POST " + target + " HTTP/1.1\r\nHost: localhost\r\n"
            "Content-Type: application/json\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
            body);
}

Result<HttpResult> HttpGet(int port, const std::string& target) {
  return HttpRoundTrip(port, "GET " + target +
                                 " HTTP/1.1\r\nHost: localhost\r\n"
                                 "Connection: close\r\n\r\n");
}

// ---------------------------------------------------------------------------
// Shared tiny world: a generated dataset, its encoding, an untrained EMBA
// model (deterministic weights from a fixed seed), and a /dedupe catalog.
// Scores from an untrained model are arbitrary but fully deterministic,
// which is all the equivalence contract needs.

struct TinyWorld {
  data::EmDataset dataset;
  core::EncodedDataset encoded;
  std::unique_ptr<Rng> rng;
  std::unique_ptr<core::EmModel> model;
  std::vector<data::Record> catalog;
};

TinyWorld& World() {
  static TinyWorld* world = [] {
    auto* w = new TinyWorld();
    data::GeneratorOptions options;
    options.seed = 33;
    options.size_factor = 0.3;
    w->dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
    core::EncodeOptions encode_options;
    encode_options.max_len = 24;
    encode_options.wordpiece_vocab = 400;
    w->encoded = core::EncodeDataset(w->dataset, encode_options);
    w->rng = std::make_unique<Rng>(5);
    core::ModelBudget budget;
    budget.dim = 16;
    budget.layers = 1;
    budget.heads = 2;
    budget.max_len = 24;
    auto model = core::CreateModel("emba", budget,
                                   w->encoded.wordpiece->vocab().size(),
                                   w->encoded.num_id_classes, w->rng.get());
    EMBA_CHECK(model.ok());
    w->model = std::move(*model);
    w->model->SetTraining(false);
    std::map<std::string, bool> seen;
    for (const auto& pair : w->dataset.test) {
      for (const auto* record : {&pair.left, &pair.right}) {
        if (!seen.emplace(record->Description(), true).second) continue;
        w->catalog.push_back(*record);
        if (w->catalog.size() >= 24) break;
      }
      if (w->catalog.size() >= 24) break;
    }
    EMBA_CHECK(w->catalog.size() >= 8);
    return w;
  }();
  return *world;
}

data::LabeledPair PairOf(const std::string& left, const std::string& right) {
  data::LabeledPair pair;
  pair.left.attributes.emplace_back("text", left);
  pair.right.attributes.emplace_back("text", right);
  return pair;
}

/// The offline reference: one standalone eval-mode forward of the pair.
double ReferenceScore(const std::string& left, const std::string& right) {
  TinyWorld& world = World();
  const core::PairSample sample = core::EncodePair(
      world.encoded, PairOf(left, right), world.model->input_style());
  return core::MatchProbability(*world.model, sample);
}

std::string MatchBody(const std::string& left, const std::string& right) {
  return "{\"left\": \"" + serve::json::Escape(left) + "\", \"right\": \"" +
         serve::json::Escape(right) + "\"}";
}

/// Extracts a required number member from a JSON response body.
double JsonNumber(const std::string& body, const std::string& key) {
  auto parsed = serve::json::Parse(body);
  EMBA_CHECK_MSG(parsed.ok(), "response body is not JSON: " + body);
  const serve::json::Value* v = parsed->Find(key);
  EMBA_CHECK_MSG(v != nullptr && v->is_number(),
                 "missing number \"" + key + "\" in: " + body);
  return v->AsNumber();
}

serve::MatchService MakeService(serve::ServeConfig config) {
  TinyWorld& world = World();
  return serve::MatchService(world.model.get(), &world.encoded,
                             world.catalog, config);
}

// ---------------------------------------------------------------------------
// DynamicBatcher unit tests (fake ScoreFn; samples carry their identity in
// id1 so routing through batches is observable).

core::PairSample SampleWithId(int id) {
  core::PairSample sample;
  sample.id1 = id;
  return sample;
}

struct RecordingScorer {
  std::mutex mutex;
  std::vector<size_t> batch_sizes;

  serve::DynamicBatcher::ScoreFn Fn() {
    return [this](const std::vector<core::PairSample>& samples) {
      std::vector<double> scores;
      scores.reserve(samples.size());
      for (const auto& s : samples) scores.push_back(s.id1 * 10.0);
      std::lock_guard<std::mutex> lock(mutex);
      batch_sizes.push_back(samples.size());
      return scores;
    };
  }
};

constexpr int64_t kNeverUs = 60'000'000;  // deadline that won't fire in-test

TEST(DynamicBatcherTest, BatchFullFireFormsOneBatch) {
  metrics::Counter& full_fires = metrics::GetCounter("serve.batch_full_fires");
  const uint64_t full_before = full_fires.Value();
  RecordingScorer scorer;
  serve::BatcherConfig config;
  config.max_batch = 4;
  config.batch_deadline_us = kNeverUs;
  serve::DynamicBatcher batcher(scorer.Fn(), config);
  std::vector<std::future<double>> futures;
  for (int i = 0; i < 4; ++i) {
    auto f = batcher.Submit(SampleWithId(i));
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(std::move(*f));
  }
  // The deadline is far away, so resolution proves the batch-full fire.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * 10.0);
  }
  {
    std::lock_guard<std::mutex> lock(scorer.mutex);
    ASSERT_EQ(scorer.batch_sizes.size(), 1u);
    EXPECT_EQ(scorer.batch_sizes[0], 4u);
  }
  EXPECT_GE(full_fires.Value(), full_before + 1);
}

TEST(DynamicBatcherTest, DeadlineFireScoresSingleStraggler) {
  metrics::Counter& deadline_fires =
      metrics::GetCounter("serve.batch_deadline_fires");
  const uint64_t before = deadline_fires.Value();
  RecordingScorer scorer;
  serve::BatcherConfig config;
  config.max_batch = 64;  // can never fill
  config.batch_deadline_us = 2000;
  serve::DynamicBatcher batcher(scorer.Fn(), config);
  auto f = batcher.Submit(SampleWithId(7));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->get(), 70.0);  // resolved without filling: deadline fired
  {
    std::lock_guard<std::mutex> lock(scorer.mutex);
    ASSERT_EQ(scorer.batch_sizes.size(), 1u);
    EXPECT_EQ(scorer.batch_sizes[0], 1u);
  }
  EXPECT_GE(deadline_fires.Value(), before + 1);
}

TEST(DynamicBatcherTest, DrainFlushesParkedRequests) {
  metrics::Counter& drain_fires =
      metrics::GetCounter("serve.batch_drain_fires");
  const uint64_t before = drain_fires.Value();
  RecordingScorer scorer;
  serve::BatcherConfig config;
  config.max_batch = 16;
  config.batch_deadline_us = kNeverUs;
  serve::DynamicBatcher batcher(scorer.Fn(), config);
  auto f1 = batcher.Submit(SampleWithId(1));
  auto f2 = batcher.Submit(SampleWithId(2));
  ASSERT_TRUE(f1.ok() && f2.ok());
  batcher.Drain();
  // Accepted requests are never dropped: drain scored them for real.
  EXPECT_EQ(f1->get(), 10.0);
  EXPECT_EQ(f2->get(), 20.0);
  EXPECT_GE(drain_fires.Value(), before + 1);
  {
    std::lock_guard<std::mutex> lock(scorer.mutex);
    ASSERT_EQ(scorer.batch_sizes.size(), 1u);
    EXPECT_EQ(scorer.batch_sizes[0], 2u);
  }
}

TEST(DynamicBatcherTest, QueueOverflowRejectsResourceExhausted) {
  RecordingScorer scorer;
  serve::BatcherConfig config;
  config.max_batch = 16;
  config.batch_deadline_us = kNeverUs;
  config.max_queue = 2;
  serve::DynamicBatcher batcher(scorer.Fn(), config);
  auto f1 = batcher.Submit(SampleWithId(1));
  auto f2 = batcher.Submit(SampleWithId(2));
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_EQ(batcher.QueueDepth(), 2u);
  auto rejected = batcher.Submit(SampleWithId(3));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // The rejection did not disturb the parked requests.
  batcher.Drain();
  EXPECT_EQ(f1->get(), 10.0);
  EXPECT_EQ(f2->get(), 20.0);
}

TEST(DynamicBatcherTest, SubmitGroupIsAllOrNothing) {
  RecordingScorer scorer;
  serve::BatcherConfig config;
  config.max_batch = 16;
  config.batch_deadline_us = kNeverUs;
  config.max_queue = 3;
  serve::DynamicBatcher batcher(scorer.Fn(), config);
  auto f1 = batcher.Submit(SampleWithId(1));
  auto f2 = batcher.Submit(SampleWithId(2));
  ASSERT_TRUE(f1.ok() && f2.ok());
  // 2 parked + 2 arriving > 3: the whole group bounces, nothing is parked.
  auto rejected = batcher.SubmitGroup({SampleWithId(3), SampleWithId(4)});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(batcher.QueueDepth(), 2u);
  // A group that fits is admitted whole.
  auto group = batcher.SubmitGroup({SampleWithId(5)});
  ASSERT_TRUE(group.ok());
  ASSERT_EQ(group->size(), 1u);
  batcher.Drain();
  EXPECT_EQ((*group)[0].get(), 50.0);
}

TEST(DynamicBatcherTest, GroupLargerThanMaxBatchSpansBatches) {
  RecordingScorer scorer;
  serve::BatcherConfig config;
  config.max_batch = 2;
  config.batch_deadline_us = 2000;
  config.max_queue = 16;
  serve::DynamicBatcher batcher(scorer.Fn(), config);
  std::vector<core::PairSample> samples;
  for (int i = 0; i < 5; ++i) samples.push_back(SampleWithId(i));
  auto futures = batcher.SubmitGroup(std::move(samples));
  ASSERT_TRUE(futures.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*futures)[static_cast<size_t>(i)].get(), i * 10.0);
  }
  std::lock_guard<std::mutex> lock(scorer.mutex);
  // 5 samples through max_batch=2 → batches of 2, 2, 1; order preserved.
  ASSERT_EQ(scorer.batch_sizes.size(), 3u);
  EXPECT_EQ(scorer.batch_sizes[0], 2u);
  EXPECT_EQ(scorer.batch_sizes[1], 2u);
  EXPECT_EQ(scorer.batch_sizes[2], 1u);
}

TEST(DynamicBatcherTest, RejectsUnavailableAfterDrain) {
  RecordingScorer scorer;
  serve::DynamicBatcher batcher(scorer.Fn(), {});
  batcher.Drain();
  auto rejected = batcher.Submit(SampleWithId(1));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  batcher.Drain();  // idempotent
}

TEST(DynamicBatcherTest, ScoreFnExceptionPropagatesToEveryFuture) {
  serve::BatcherConfig config;
  config.batch_deadline_us = 1000;
  serve::DynamicBatcher batcher(
      [](const std::vector<core::PairSample>&) -> std::vector<double> {
        throw std::runtime_error("scorer exploded");
      },
      config);
  auto f1 = batcher.Submit(SampleWithId(1));
  auto f2 = batcher.Submit(SampleWithId(2));
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_THROW(f1->get(), std::runtime_error);
  EXPECT_THROW(f2->get(), std::runtime_error);
  // The batcher thread survived the exception and still drains cleanly.
  batcher.Drain();
}

// ---------------------------------------------------------------------------
// HTTP service tests: the equivalence contract end to end.

TEST(MatchServiceTest, BatchFullFireScoresAreBitIdentical) {
  TinyWorld& world = World();
  metrics::Counter& full_fires = metrics::GetCounter("serve.batch_full_fires");
  const uint64_t full_before = full_fires.Value();

  serve::ServeConfig config;
  config.batcher.max_batch = 3;
  // A long deadline: the first three responses can only arrive promptly via
  // the batch-full fire; the fourth is the straggler the deadline sweeps up.
  config.batcher.batch_deadline_us = 1'000'000;
  config.http_workers = 4;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());

  const int kClients = 4;
  std::vector<std::string> lefts, rights;
  for (int i = 0; i < kClients; ++i) {
    lefts.push_back(world.catalog[static_cast<size_t>(i)].Description());
    rights.push_back(world.catalog[static_cast<size_t>(i) + 4].Description());
  }
  std::vector<HttpResult> results(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto r = HttpPost(service.port(), "/match", MatchBody(lefts[i], rights[i]));
      if (r.ok()) results[static_cast<size_t>(i)] = *r;
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_EQ(results[static_cast<size_t>(i)].status, 200) << "client " << i;
    const double served =
        JsonNumber(results[static_cast<size_t>(i)].body, "match_probability");
    // Bit-identical, not approximately equal: the dynamically formed batch
    // must reproduce the standalone forward exactly.
    EXPECT_EQ(served, ReferenceScore(lefts[static_cast<size_t>(i)],
                                     rights[static_cast<size_t>(i)]))
        << "client " << i;
  }
  EXPECT_GE(full_fires.Value(), full_before + 1);
  service.Shutdown();
  EXPECT_FALSE(service.Running());
}

TEST(MatchServiceTest, DeadlineFireScoresAreBitIdentical) {
  TinyWorld& world = World();
  metrics::Counter& deadline_fires =
      metrics::GetCounter("serve.batch_deadline_fires");
  const uint64_t before = deadline_fires.Value();

  serve::ServeConfig config;
  config.batcher.max_batch = 64;  // can never fill: deadline path only
  config.batcher.batch_deadline_us = 2000;
  config.http_workers = 2;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());

  for (int i = 0; i < 2; ++i) {
    const std::string left = world.catalog[static_cast<size_t>(i)].Description();
    const std::string right =
        world.catalog[static_cast<size_t>(i) + 2].Description();
    auto r = HttpPost(service.port(), "/match", MatchBody(left, right));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200);
    EXPECT_EQ(JsonNumber(r->body, "match_probability"),
              ReferenceScore(left, right));
    EXPECT_EQ(r->headers.at("content-type"), "application/json");
  }
  EXPECT_GE(deadline_fires.Value(), before + 2);
  service.Shutdown();
}

TEST(MatchServiceTest, DedupeMatchesOfflineReference) {
  TinyWorld& world = World();
  serve::ServeConfig config;
  config.http_workers = 2;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());

  const std::string query = world.catalog[0].Description();
  auto r = HttpPost(service.port(), "/dedupe",
                    "{\"record\": \"" + serve::json::Escape(query) +
                        "\", \"top_k\": 5}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->status, 200);

  // Offline reference: same blocker config, standalone single-pair forwards.
  block::TokenBlocker blocker(service.config().blocker);
  const pipeline::CandidateSet reference = pipeline::BuildCandidateSamples(
      world.encoded, blocker, world.catalog[0], world.catalog,
      world.model->input_style());
  std::map<size_t, double> reference_scores;
  for (size_t c = 0; c < reference.samples.size(); ++c) {
    reference_scores[reference.catalog_indices[c]] =
        core::MatchProbability(*world.model, reference.samples[c]);
  }

  auto parsed = serve::json::Parse(r->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(static_cast<size_t>(JsonNumber(r->body, "candidates_considered")),
            reference.samples.size());
  const serve::json::Value* candidates = parsed->Find("candidates");
  ASSERT_NE(candidates, nullptr);
  ASSERT_TRUE(candidates->is_array());
  ASSERT_LE(candidates->AsArray().size(), 5u);
  ASSERT_FALSE(candidates->AsArray().empty());
  double previous = 2.0;
  for (const auto& candidate : candidates->AsArray()) {
    const size_t index =
        static_cast<size_t>(candidate.Find("catalog_index")->AsNumber());
    const double probability =
        candidate.Find("match_probability")->AsNumber();
    ASSERT_TRUE(reference_scores.count(index)) << "index " << index;
    EXPECT_EQ(probability, reference_scores[index]) << "index " << index;
    EXPECT_LE(probability, previous);  // ranked descending
    previous = probability;
  }
  service.Shutdown();
}

TEST(MatchServiceTest, QueueOverflowAnswers429WithRetryAfter) {
  TinyWorld& world = World();
  serve::ServeConfig config;
  config.batcher.max_batch = 16;
  config.batcher.max_queue = 1;
  config.batcher.batch_deadline_us = 30'000'000;  // parks until drain
  config.http_workers = 3;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());

  const std::string left = world.catalog[0].Description();
  const std::string right = world.catalog[1].Description();
  HttpResult parked;
  std::thread client([&] {
    auto r = HttpPost(service.port(), "/match", MatchBody(left, right));
    if (r.ok()) parked = *r;
  });
  // Wait until the first request is parked in the batch queue.
  metrics::Gauge& depth = metrics::GetGauge("serve.queue_depth");
  for (int spin = 0; spin < 2000 && depth.Value() < 1.0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(depth.Value(), 1.0) << "first request never parked";

  auto rejected = HttpPost(service.port(), "/match", MatchBody(right, left));
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status, 429);
  ASSERT_TRUE(rejected->headers.count("retry-after"));
  EXPECT_FALSE(rejected->headers.at("retry-after").empty());
  EXPECT_NE(rejected->body.find("queue full"), std::string::npos);

  // Drain completes the parked request with a real, bit-identical score.
  service.Shutdown();
  client.join();
  ASSERT_EQ(parked.status, 200);
  EXPECT_EQ(JsonNumber(parked.body, "match_probability"),
            ReferenceScore(left, right));
}

// RFC 9110: Retry-After is a non-negative integer number of seconds. The
// two rejection statuses must hint differently — 429 (queue full) clears
// within about one batch deadline, 503 (draining) means this process is
// going away and clients should back off much harder.
TEST(MatchServiceTest, RetryAfterHintsAreIntegerSecondsAndDistinct) {
  TinyWorld& world = World();
  const std::string left = world.catalog[0].Description();
  const std::string right = world.catalog[1].Description();

  auto expect_integer_seconds = [](const std::string& hint) {
    ASSERT_FALSE(hint.empty());
    for (char c : hint) {
      ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(c)))
          << "Retry-After '" << hint << "' is not a non-negative integer";
    }
  };

  // Large deadline: the 429 hint is ceil(deadline) = 30 s; the same
  // service's 503 (post-drain, via the socketless Handle seam) must be
  // strictly larger.
  serve::ServeConfig config;
  config.batcher.max_batch = 16;
  config.batcher.max_queue = 1;
  config.batcher.batch_deadline_us = 30'000'000;
  config.http_workers = 3;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());

  HttpResult parked;
  std::thread client([&] {
    auto r = HttpPost(service.port(), "/match", MatchBody(left, right));
    if (r.ok()) parked = *r;
  });
  metrics::Gauge& depth = metrics::GetGauge("serve.queue_depth");
  for (int spin = 0; spin < 2000 && depth.Value() < 1.0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(depth.Value(), 1.0) << "first request never parked";
  auto rejected = HttpPost(service.port(), "/match", MatchBody(right, left));
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  ASSERT_EQ(rejected->status, 429);
  ASSERT_TRUE(rejected->headers.count("retry-after"));
  const std::string hint_429 = rejected->headers.at("retry-after");
  expect_integer_seconds(hint_429);
  EXPECT_EQ(hint_429, "30");

  service.Shutdown();
  client.join();
  ASSERT_EQ(parked.status, 200);

  http::HttpRequest match_request;
  match_request.method = "POST";
  match_request.path = "/match";
  match_request.body = MatchBody(left, right);
  http::HttpResponse drained = service.Handle(match_request);
  EXPECT_EQ(drained.status, 503);
  std::string hint_503;
  for (const auto& [name, value] : drained.extra_headers) {
    if (name == "Retry-After") hint_503 = value;
  }
  expect_integer_seconds(hint_503);
  EXPECT_EQ(hint_503, "60");  // 2× the 429 hint
  EXPECT_NE(hint_503, hint_429);

  // Sub-second deadline: hints must round UP to whole seconds, never down
  // to "0" (or a fraction). The 503 hint max(5, 2·ceil(deadline)) = 5
  // proves the inner 429 quantity evaluated to 1 s, not 0.002 s.
  serve::ServeConfig fast_config;
  fast_config.batcher.batch_deadline_us = 2000;
  serve::MatchService fast = MakeService(fast_config);
  ASSERT_TRUE(fast.Start(0).ok());
  fast.Shutdown();
  http::HttpResponse fast_rejected = fast.Handle(match_request);
  EXPECT_EQ(fast_rejected.status, 503);
  std::string fast_hint;
  for (const auto& [name, value] : fast_rejected.extra_headers) {
    if (name == "Retry-After") fast_hint = value;
  }
  expect_integer_seconds(fast_hint);
  EXPECT_EQ(fast_hint, "5");
}

TEST(MatchServiceTest, SigtermDrainProtocol) {
  serve::ServeConfig config;
  config.http_workers = 2;
  serve::MatchService service = MakeService(config);
  serve::InstallDrainSignalHandlers();
  serve::ResetDrainRequestedForTest();
  ASSERT_TRUE(service.Start(0).ok());
  const int port = service.port();

  auto healthy = HttpGet(port, "/healthz");
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->status, 200);
  EXPECT_FALSE(serve::DrainRequested());

  // The CLI's serve loop: SIGTERM sets the flag and flips /healthz; the
  // loop then runs Shutdown from normal context.
  raise(SIGTERM);
  EXPECT_TRUE(serve::DrainRequested());
  auto draining = HttpGet(port, "/healthz");
  ASSERT_TRUE(draining.ok());
  EXPECT_EQ(draining->status, 503);
  EXPECT_NE(draining->body.find("draining"), std::string::npos);

  service.Shutdown();
  EXPECT_FALSE(service.Running());
  // The listener is gone: connections are refused, not wedged.
  EXPECT_FALSE(HttpGet(port, "/healthz").ok());
  service.Shutdown();  // idempotent
  serve::ResetDrainRequestedForTest();
  SetHealthState(HealthState::kScoring);
}

TEST(MatchServiceTest, ConcurrentMatchesAndMetricsScrapesStayConsistent) {
  TinyWorld& world = World();
  serve::ServeConfig config;
  config.batcher.batch_deadline_us = 1000;
  config.http_workers = 3;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());

  std::atomic<int> failures{0};
  std::thread scraper([&] {
    for (int i = 0; i < 8; ++i) {
      auto r = HttpGet(service.port(), "/metrics");
      if (!r.ok() || r->status != 200 ||
          r->body.find("emba_serve_http_requests") == std::string::npos ||
          r->body.find("emba_serve_batch_size_bucket") == std::string::npos) {
        failures.fetch_add(1);
      }
    }
  });
  const std::string left = world.catalog[2].Description();
  const std::string right = world.catalog[3].Description();
  const double reference = ReferenceScore(left, right);
  std::thread matcher([&] {
    for (int i = 0; i < 6; ++i) {
      auto r = HttpPost(service.port(), "/match", MatchBody(left, right));
      if (!r.ok() || r->status != 200 ||
          JsonNumber(r->body, "match_probability") != reference) {
        failures.fetch_add(1);
      }
    }
  });
  scraper.join();
  matcher.join();
  EXPECT_EQ(failures.load(), 0);
  service.Shutdown();
}

TEST(MatchServiceTest, BadRequestsAnswer4xx) {
  serve::ServeConfig config;
  config.batcher.batch_deadline_us = 1000;
  config.http_workers = 2;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());
  const int port = service.port();

  auto malformed = HttpPost(port, "/match", "{\"left\": ");
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(malformed->status, 400);
  EXPECT_NE(malformed->body.find("JSON parse error"), std::string::npos);

  auto missing = HttpPost(port, "/match", "{\"left\": \"only one side\"}");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);

  auto wrong_type = HttpPost(port, "/match",
                             "{\"left\": \"a\", \"right\": 42}");
  ASSERT_TRUE(wrong_type.ok());
  EXPECT_EQ(wrong_type->status, 400);

  auto get_match = HttpGet(port, "/match");
  ASSERT_TRUE(get_match.ok());
  EXPECT_EQ(get_match->status, 405);
  EXPECT_EQ(get_match->headers.at("allow"), "POST");

  auto bad_top_k = HttpPost(port, "/dedupe",
                            "{\"record\": \"x\", \"top_k\": 0}");
  ASSERT_TRUE(bad_top_k.ok());
  EXPECT_EQ(bad_top_k->status, 400);

  auto unknown = HttpGet(port, "/nope");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404);

  service.Shutdown();
}

// ---------------------------------------------------------------------------
// Request-scoped tracing acceptance: with EMBA_RTRACE semantics enabled, a
// deadline-batched request must be retrievable by its response trace id via
// /rpcz, carry a stage breakdown that accounts for its e2e latency, link the
// batch sibling it shared compute with, and surface as an exemplar on the
// /metrics exposition. With tracing off, none of the machinery may engage.

TEST(MatchServiceTest, TracingAttributesStagesBatchSiblingsAndExemplars) {
  TinyWorld& world = World();
  rtrace::ResetForTest();
  rtrace::SetEnabled(true);

  serve::ServeConfig config;
  config.batcher.max_batch = 64;  // can never fill: both clients share one
  config.batcher.batch_deadline_us = 80'000;  // deadline-fired batch
  config.http_workers = 3;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());

  const std::string left = world.catalog[0].Description();
  const std::string right = world.catalog[1].Description();
  HttpResult results[2];
  std::thread clients[2];
  for (int i = 0; i < 2; ++i) {
    clients[i] = std::thread([&, i] {
      auto r = HttpPost(service.port(), "/match",
                        i == 0 ? MatchBody(left, right)
                               : MatchBody(right, left));
      if (r.ok()) results[i] = *r;
    });
  }
  for (auto& t : clients) t.join();

  // Every traced response names its trace id in a header.
  std::string hex[2];
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(results[i].status, 200) << "client " << i;
    ASSERT_TRUE(results[i].headers.count("x-emba-trace-id")) << "client " << i;
    hex[i] = results[i].headers.at("x-emba-trace-id");
    EXPECT_EQ(hex[i].size(), 16u);
  }
  EXPECT_NE(hex[0], hex[1]);

  // The slow (deadline-parked) request is retained and retrievable by id.
  rtrace::RequestRecord record;
  ASSERT_TRUE(rtrace::FindRetainedHex(hex[0], &record))
      << "trace " << hex[0] << " not retained";
  EXPECT_EQ(record.endpoint, "/match");
  EXPECT_EQ(record.status, 200);
  EXPECT_FALSE(record.in_flight);
  // Queue wait dominates a deadline fire; e2e must reflect the ~80 ms park.
  EXPECT_GE(record.e2e_ms, 50.0);

  // The stage breakdown accounts for the request's latency: stages plus the
  // unattributed remainder reconstruct e2e, and the attributed share (the
  // queue wait alone is ~the whole deadline) carries most of it.
  double stage_sum = 0.0;
  for (int s = 0; s < rtrace::kStageCount; ++s) stage_sum += record.stage_ms[s];
  EXPECT_LE(stage_sum, record.e2e_ms + 0.5);
  EXPECT_GE(stage_sum, 0.6 * record.e2e_ms);
  EXPECT_NEAR(stage_sum + record.other_ms, record.e2e_ms, 0.5);
  EXPECT_GT(record.stage_ms[static_cast<int>(rtrace::Stage::kQueueWait)], 0.0);
  EXPECT_GT(record.stage_ms[static_cast<int>(rtrace::Stage::kCompute)], 0.0);

  // Both requests rode one deadline-fired batch: the span links its sibling.
  ASSERT_TRUE(record.has_batch);
  EXPECT_EQ(record.batch_size, 2);
  EXPECT_EQ(record.fire_reason, "deadline");
  ASSERT_GE(record.sibling_trace_ids.size(), 1u);
  bool sibling_found = false;
  for (const std::string& sibling : record.sibling_trace_ids) {
    if (sibling == hex[1]) sibling_found = true;
  }
  EXPECT_TRUE(sibling_found) << "batch span does not link client 1";

  // /rpcz serves the same record over HTTP, by trace id and in the listing.
  auto by_id = HttpGet(service.port(), "/rpcz?trace_id=" + hex[0]);
  ASSERT_TRUE(by_id.ok()) << by_id.status().ToString();
  ASSERT_EQ(by_id->status, 200);
  EXPECT_NE(by_id->body.find("\"" + hex[0] + "\""), std::string::npos);
  EXPECT_NE(by_id->body.find("\"fire_reason\": \"deadline\""),
            std::string::npos);
  auto listing = HttpGet(service.port(), "/rpcz?format=json");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->status, 200);
  EXPECT_NE(listing->body.find(hex[0]), std::string::npos);
  EXPECT_NE(listing->body.find(hex[1]), std::string::npos);

  // The e2e histogram carries an exemplar naming a retained trace id.
  auto metrics_page = HttpGet(service.port(), "/metrics");
  ASSERT_TRUE(metrics_page.ok());
  ASSERT_EQ(metrics_page->status, 200);
  EXPECT_NE(metrics_page->body.find(" # {trace_id=\""), std::string::npos);
  EXPECT_TRUE(
      metrics_page->body.find("# {trace_id=\"" + hex[0] + "\"") !=
          std::string::npos ||
      metrics_page->body.find("# {trace_id=\"" + hex[1] + "\"") !=
          std::string::npos)
      << "no exemplar references either request's trace id";

  service.Shutdown();
  rtrace::SetEnabled(false);
  rtrace::ResetForTest();
}

TEST(MatchServiceTest, TracingOffLeavesNoHeaderAndRetainsNothing) {
  TinyWorld& world = World();
  rtrace::SetEnabled(false);
  rtrace::ResetForTest();

  serve::ServeConfig config;
  config.batcher.batch_deadline_us = 1000;
  config.http_workers = 2;
  serve::MatchService service = MakeService(config);
  ASSERT_TRUE(service.Start(0).ok());

  auto r = HttpPost(service.port(), "/match",
                    MatchBody(world.catalog[0].Description(),
                              world.catalog[1].Description()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->status, 200);
  EXPECT_EQ(r->headers.count("x-emba-trace-id"), 0u);
  EXPECT_TRUE(rtrace::SnapshotRetained().empty());
  EXPECT_TRUE(rtrace::SnapshotInFlight().empty());

  // /rpcz stays serviceable while tracing is off — it just has nothing.
  auto rpcz = HttpGet(service.port(), "/rpcz?format=json");
  ASSERT_TRUE(rpcz.ok());
  ASSERT_EQ(rpcz->status, 200);
  EXPECT_NE(rpcz->body.find("\"tracing\": false"), std::string::npos);

  service.Shutdown();
}

// ---------------------------------------------------------------------------
// serve::json unit tests: the response fidelity and hostile-input corners
// the HTTP tests rely on.

TEST(ServeJsonTest, NumberRoundTripsBitExactly) {
  const double values[] = {0.1, 1.0 / 3.0, 5e-324, 0.49999999999999994,
                           1234567.891011, 1.0};
  for (double v : values) {
    auto parsed = serve::json::Parse(serve::json::NumberToString(v));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->AsNumber(), v);
  }
}

// Regression: number parse/format used std::strtod and printf %g, both of
// which honor LC_NUMERIC — under a comma-decimal locale "0.75" truncated
// to 0 on parse and scores printed as invalid JSON ("0,5"). The test image
// only ships the C locale, so a comma-decimal one is generated on the fly
// with localedef; skipped (not silently passed) when that tool is absent.
TEST(ServeJsonTest, NumbersAreLocaleIndependent) {
  const std::string locale_dir = ::testing::TempDir() + "/emba_locales";
  const std::string cmd = "mkdir -p '" + locale_dir +
                          "' && localedef -i de_DE -f UTF-8 '" + locale_dir +
                          "/de_DE.UTF-8' >/dev/null 2>&1";
  if (std::system(cmd.c_str()) != 0) {
    GTEST_SKIP() << "localedef cannot build a comma-decimal locale here";
  }
  ASSERT_EQ(setenv("LOCPATH", locale_dir.c_str(), 1), 0);
  if (std::setlocale(LC_ALL, "de_DE.UTF-8") == nullptr) {
    unsetenv("LOCPATH");
    GTEST_SKIP() << "generated de_DE.UTF-8 locale did not activate";
  }
  // The locale really is comma-decimal — otherwise this test proves nothing.
  char probe[32];
  std::snprintf(probe, sizeof(probe), "%.1f", 1.5);
  EXPECT_STREQ(probe, "1,5");

  auto parsed = serve::json::Parse("{\"p\": 0.75, \"q\": 1.5e-3}");
  std::string printed_half = serve::json::NumberToString(0.5);
  auto round_trip = serve::json::Parse(serve::json::NumberToString(1.0 / 3.0));

  std::setlocale(LC_ALL, "C");
  unsetenv("LOCPATH");

  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("p")->AsNumber(), 0.75);
  EXPECT_EQ(parsed->Find("q")->AsNumber(), 1.5e-3);
  EXPECT_EQ(printed_half, "0.5");
  ASSERT_TRUE(round_trip.ok()) << round_trip.status().ToString();
  EXPECT_EQ(round_trip->AsNumber(), 1.0 / 3.0);
}

TEST(ServeJsonTest, ParsesNestedDocument) {
  auto parsed = serve::json::Parse(
      "{\"a\": [1, 2.5, \"s\\u00e9\"], \"b\": {\"c\": true, \"d\": null}}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  const serve::json::Value* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray()[2].AsString(), "s\xc3\xa9");
  EXPECT_TRUE(parsed->Find("b")->Find("c")->AsBool());
  EXPECT_TRUE(parsed->Find("b")->Find("d")->is_null());
}

TEST(ServeJsonTest, RejectsHostileInput) {
  // Unterminated, trailing garbage, deep nesting, bad escapes: all clean
  // InvalidArgument errors, never a crash.
  EXPECT_FALSE(serve::json::Parse("{\"a\": ").ok());
  EXPECT_FALSE(serve::json::Parse("{} trailing").ok());
  EXPECT_FALSE(serve::json::Parse("\"\\q\"").ok());
  EXPECT_FALSE(serve::json::Parse("01").ok());
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  auto nested = serve::json::Parse(deep);
  ASSERT_FALSE(nested.ok());
  EXPECT_NE(nested.status().message().find("deep"), std::string::npos);
}

TEST(ServeJsonTest, EscapeProtectsControlAndQuoteCharacters) {
  EXPECT_EQ(serve::json::Escape("a\"b\\c\nd\x01"),
            "a\\\"b\\\\c\\nd\\u0001");
}

}  // namespace
}  // namespace emba
