// Property-based gradient verification: every differentiable op is checked
// against central finite differences on randomized inputs, across several
// seeds (parameterized gtest). This is the strongest correctness guarantee
// the library has — a silent gradient bug would corrupt every experiment.
#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "core/aoa.h"

namespace emba {
namespace ag {
namespace {

class GradCheckSeeded : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};

  Var RandomParam(std::vector<int64_t> shape, float scale = 1.0f) {
    return Parameter(
        Tensor::RandomNormal(std::move(shape), &rng_, 0.0f, scale));
  }

  void ExpectGradOk(const std::function<Var(const std::vector<Var>&)>& fn,
                    std::vector<Var> inputs, double tol = 5e-2) {
    GradCheckResult result = CheckGradients(fn, std::move(inputs), 1e-2, tol);
    EXPECT_TRUE(result.ok)
        << "max_abs_error=" << result.max_abs_error
        << " max_rel_error=" << result.max_rel_error
        << " worst_param=" << result.worst_param
        << " worst_index=" << result.worst_index;
  }
};

TEST_P(GradCheckSeeded, Add) {
  ExpectGradOk([](const std::vector<Var>& v) { return MeanAll(Add(v[0], v[1])); },
               {RandomParam({3, 4}), RandomParam({3, 4})});
}

TEST_P(GradCheckSeeded, SubMulScale) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        return MeanAll(Scale(Mul(Sub(v[0], v[1]), v[1]), 1.7f));
      },
      {RandomParam({2, 5}), RandomParam({2, 5})});
}

TEST_P(GradCheckSeeded, MatMul) {
  ExpectGradOk(
      [](const std::vector<Var>& v) { return MeanAll(MatMul(v[0], v[1])); },
      {RandomParam({3, 4}), RandomParam({4, 2})});
}

TEST_P(GradCheckSeeded, MatMulChainWithTranspose) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        return MeanAll(MatMul(v[0], Transpose(v[1])));
      },
      {RandomParam({3, 4}), RandomParam({5, 4})});
}

TEST_P(GradCheckSeeded, SoftmaxRows) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        // Break softmax shift-invariance with a random projection.
        return MeanAll(Mul(SoftmaxRows(v[0]), v[1]));
      },
      {RandomParam({3, 5}), RandomParam({3, 5})});
}

TEST_P(GradCheckSeeded, Activations) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        return MeanAll(Add(Gelu(v[0]), Add(Tanh(v[0]), Sigmoid(v[0]))));
      },
      {RandomParam({2, 6})});
}

TEST_P(GradCheckSeeded, ReluAwayFromKink) {
  // Keep inputs away from 0 so the finite difference is valid.
  Var x = RandomParam({2, 6});
  for (int64_t i = 0; i < x.size(); ++i) {
    float& v = x.mutable_value()[i];
    if (std::abs(v) < 0.2f) v = v < 0 ? v - 0.3f : v + 0.3f;
  }
  ExpectGradOk([](const std::vector<Var>& v) { return MeanAll(Relu(v[0])); },
               {x});
}

TEST_P(GradCheckSeeded, LayerNorm) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        return MeanAll(Mul(LayerNormRows(v[0], v[1], v[2]), v[3]));
      },
      {RandomParam({3, 8}), RandomParam({8}, 0.5f), RandomParam({8}, 0.5f),
       RandomParam({3, 8})});
}

TEST_P(GradCheckSeeded, Reductions) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        Var a = MeanRows(v[0]);   // [n]
        Var b = SumRows(v[0]);    // [n]
        Var c = MeanCols(v[0]);   // [m]
        return Add(MeanAll(Mul(a, b)), Dot(c, c));
      },
      {RandomParam({3, 4})});
}

TEST_P(GradCheckSeeded, SlicesAndConcat) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        Var top = RowSlice(v[0], 0, 2);
        Var left = ColSlice(v[0], 0, 2);
        Var cat = ConcatCols({top, RowSlice(v[0], 2, 4)});
        return Add(MeanAll(cat), MeanAll(Mul(left, left)));
      },
      {RandomParam({4, 4})});
}

TEST_P(GradCheckSeeded, EmbeddingLookup) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        return MeanAll(Mul(EmbeddingLookup(v[0], {0, 2, 2, 1}), v[1]));
      },
      {RandomParam({4, 3}), RandomParam({4, 3})});
}

TEST_P(GradCheckSeeded, CrossEntropy) {
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        return CrossEntropyFromLogits(Reshape(v[0], {5}), 3);
      },
      {RandomParam({5, 1})});
}

TEST_P(GradCheckSeeded, AttentionShapedComposite) {
  // Mimics the AOA dataflow: interaction matrix, two softmaxes, pooling.
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        const auto& e1 = v[0];
        const auto& e2 = v[1];
        Var interaction = MatMul(e1, Transpose(e2));
        Var alpha = SoftmaxRows(Transpose(interaction));
        Var beta = SoftmaxRows(interaction);
        Var beta_bar = MeanRows(beta);
        Var gamma = MatMul(Transpose(alpha),
                           Reshape(beta_bar, {e2.rows(), 1}));
        Var pooled = MatMul(Transpose(e1), gamma);
        return MeanAll(Mul(Reshape(pooled, {e1.cols()}), v[2]));
      },
      {RandomParam({4, 3}), RandomParam({5, 3}), RandomParam({3})}, 8e-2);
}

TEST_P(GradCheckSeeded, AoaModuleNonSquare) {
  // The real AOA module (src/core/aoa.cc), not a re-derivation: gradients
  // must flow through the column/row softmaxes, γ = αᵀ·β̄ and the pooled
  // x = E_e1ᵀ·γ. m=4, n=6 exercises the m≠n shape handling.
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        core::AoaOutput out = core::AttentionOverAttention(v[0], v[1]);
        return Add(MeanAll(Mul(out.pooled, v[2])),
                   Add(MeanAll(Mul(out.gamma, v[3])),
                       MeanAll(Mul(out.beta_bar, v[4]))));
      },
      {RandomParam({4, 3}), RandomParam({6, 3}), RandomParam({3}),
       RandomParam({4}), RandomParam({6})},
      8e-2);
}

TEST_P(GradCheckSeeded, AoaModuleWideEntityOne) {
  // The transposed regime (m > n), pooled head only.
  ExpectGradOk(
      [](const std::vector<Var>& v) {
        core::AoaOutput out = core::AttentionOverAttention(v[0], v[1]);
        return MeanAll(Mul(out.pooled, v[2]));
      },
      {RandomParam({7, 5}), RandomParam({2, 5}), RandomParam({5})}, 8e-2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradCheckSeeded,
                         ::testing::Values(11ull, 29ull, 47ull, 83ull));

}  // namespace
}  // namespace ag
}  // namespace emba
