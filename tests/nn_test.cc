// Unit tests for the nn module: module registry, layers, attention,
// transformer encoder, LSTM, fastText embeddings, optimizers, schedules,
// and parameter (de)serialization.
#include <gtest/gtest.h>

#include <cstdio>

#include "nn/attention.h"
#include "nn/fasttext.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"

namespace emba {
namespace nn {
namespace {

TEST(ModuleTest, ParameterRegistrationAndCount) {
  Rng rng(1);
  Linear linear(4, 3, &rng);
  EXPECT_EQ(linear.ParameterCount(), 4 * 3 + 3);
  auto named = linear.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

TEST(ModuleTest, ChildModulesGetDottedNames) {
  Rng rng(1);
  MultiHeadSelfAttention attn(8, 2, 0.0f, &rng);
  auto named = attn.NamedParameters();
  bool found = false;
  for (const auto& [name, var] : named) {
    if (name == "wq.weight") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ModuleTest, SetTrainingPropagates) {
  Rng rng(1);
  TransformerConfig config;
  config.vocab_size = 20;
  config.dim = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 16;
  TransformerEncoder encoder(config, &rng);
  encoder.SetTraining(false);
  EXPECT_FALSE(encoder.training());
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(2);
  Linear a(5, 4, &rng), b(5, 4, &rng);
  const std::string path = "/tmp/emba_params_test.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  for (size_t i = 0; i < a.Parameters().size(); ++i) {
    const Tensor& ta = a.Parameters()[i].value();
    const Tensor& tb = b.Parameters()[i].value();
    for (int64_t j = 0; j < ta.size(); ++j) EXPECT_EQ(ta[j], tb[j]);
  }
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsShapeMismatch) {
  Rng rng(2);
  Linear a(5, 4, &rng);
  Linear c(6, 4, &rng);
  const std::string path = "/tmp/emba_params_mismatch.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  Status status = c.LoadParameters(path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(3);
  Linear linear(2, 2, &rng);
  // Overwrite weights for a deterministic check.
  const_cast<ag::Var&>(linear.weight()).mutable_value() =
      Tensor::FromValues(2, 2, {1, 2, 3, 4});
  const_cast<ag::Var&>(linear.bias()).mutable_value() =
      Tensor::FromVector({10, 20});
  ag::Var x(Tensor::FromVector({1, 1}));
  ag::Var y = linear.Forward(x);
  EXPECT_EQ(y.value()[0], 14.0f);  // 1*1+1*3+10
  EXPECT_EQ(y.value()[1], 26.0f);  // 1*2+1*4+20
}

TEST(LinearTest, Handles2DInput) {
  Rng rng(3);
  Linear linear(4, 2, &rng);
  ag::Var x(Tensor::Zeros({5, 4}));
  ag::Var y = linear.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
}

TEST(EmbeddingTest, LookupShapes) {
  Rng rng(4);
  Embedding embedding(10, 6, &rng);
  ag::Var out = embedding.Forward({1, 5, 5});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 6);
  // Identical ids give identical rows.
  for (int64_t c = 0; c < 6; ++c) {
    EXPECT_EQ(out.value().at(1, c), out.value().at(2, c));
  }
}

TEST(LayerNormTest, TrainableGainShiftsOutput) {
  Rng rng(5);
  LayerNorm norm(4);
  ag::Var x(Tensor::FromValues(1, 4, {1, 2, 3, 4}));
  ag::Var y = norm.Forward(x);
  EXPECT_EQ(y.rows(), 1);
  double sum = 0.0;
  for (int64_t c = 0; c < 4; ++c) sum += y.value().at(0, c);
  EXPECT_NEAR(sum, 0.0, 1e-4);
}

TEST(AttentionTest, OutputShapeAndCapture) {
  Rng rng(6);
  MultiHeadSelfAttention attn(8, 2, 0.0f, &rng);
  attn.SetTraining(false);
  attn.CaptureAttention(true);
  ag::Var x(Tensor::RandomNormal({5, 8}, &rng));
  ag::Var y = attn.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
  ASSERT_TRUE(attn.last_attention().has_value());
  const Tensor& weights = *attn.last_attention();
  EXPECT_EQ(weights.rows(), 5);
  // Head-averaged attention rows sum to 1.
  for (int64_t r = 0; r < weights.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < weights.cols(); ++c) sum += weights.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(TransformerTest, EncoderShapesAndDeterminismInEval) {
  Rng rng(7);
  TransformerConfig config;
  config.vocab_size = 30;
  config.dim = 12;
  config.num_layers = 2;
  config.num_heads = 3;
  config.ffn_dim = 24;
  config.max_position = 16;
  TransformerEncoder encoder(config, &rng);
  encoder.SetTraining(false);
  std::vector<int> tokens = {2, 8, 9, 10, 3, 11, 12, 3};
  std::vector<int> segments = {0, 0, 0, 0, 0, 1, 1, 1};
  ag::NoGradGuard guard;
  ag::Var a = encoder.Forward(tokens, segments);
  ag::Var b = encoder.Forward(tokens, segments);
  EXPECT_EQ(a.rows(), 8);
  EXPECT_EQ(a.cols(), 12);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.value()[i], b.value()[i]);
  }
}

TEST(TransformerTest, SegmentEmbeddingChangesOutput) {
  Rng rng(8);
  TransformerConfig config;
  config.vocab_size = 30;
  config.dim = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 16;
  TransformerEncoder encoder(config, &rng);
  encoder.SetTraining(false);
  ag::NoGradGuard guard;
  std::vector<int> tokens = {2, 9, 9, 3};
  ag::Var a = encoder.Forward(tokens, {0, 0, 0, 0});
  ag::Var b = encoder.Forward(tokens, {0, 0, 1, 1});
  float diff = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    diff += std::abs(a.value()[i] - b.value()[i]);
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(TransformerTest, RobertaPresetHasNoSegments) {
  TransformerConfig config = TransformerConfig::RobertaStyle(30, 8, 1);
  EXPECT_EQ(config.num_segments, 0);
  Rng rng(9);
  TransformerEncoder encoder(config, &rng);
  encoder.SetTraining(false);
  ag::NoGradGuard guard;
  // Segment ids ignored.
  ag::Var a = encoder.Forward({2, 9, 3}, {0, 0, 0});
  ag::Var b = encoder.Forward({2, 9, 3}, {0, 1, 1});
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.value()[i], b.value()[i]);
  }
}

TEST(TransformerTest, PresetsShrinkTheModel) {
  TransformerConfig base;
  base.vocab_size = 100;
  base.dim = 48;
  base.num_layers = 4;
  TransformerConfig small = TransformerConfig::Small(100, 48);
  EXPECT_LT(small.dim, base.dim);
  EXPECT_LT(small.num_layers, base.num_layers);
  TransformerConfig distil = TransformerConfig::Distil(100, 48, 4);
  EXPECT_EQ(distil.dim, 48);
  EXPECT_EQ(distil.num_layers, 2);
}

TEST(TransformerTest, MlmHeadShape) {
  Rng rng(10);
  MlmHead head(8, 50, &rng);
  ag::Var hidden(Tensor::Zeros({4, 8}));
  ag::Var logits = head.Forward(hidden);
  EXPECT_EQ(logits.rows(), 4);
  EXPECT_EQ(logits.cols(), 50);
}

TEST(LstmTest, ShapesAndGradientFlow) {
  Rng rng(11);
  Lstm lstm(6, 5, &rng);
  ag::Var seq = ag::Parameter(Tensor::RandomNormal({7, 6}, &rng));
  ag::Var all = lstm.Forward(seq);
  EXPECT_EQ(all.rows(), 7);
  EXPECT_EQ(all.cols(), 5);
  ag::Var last = lstm.ForwardLast(seq);
  EXPECT_EQ(last.size(), 5);
  ag::Var loss = ag::MeanAll(last);
  loss.Backward();
  EXPECT_TRUE(seq.has_grad());
  EXPECT_GT(seq.grad().Norm(), 0.0f);
}

TEST(LstmTest, BiLstmDoublesWidth) {
  Rng rng(12);
  BiLstm bilstm(4, 3, &rng);
  ag::Var seq(Tensor::RandomNormal({5, 4}, &rng));
  ag::Var out = bilstm.Forward(seq);
  EXPECT_EQ(out.rows(), 5);
  EXPECT_EQ(out.cols(), 6);
}

TEST(FastTextTest, DeterministicBuckets) {
  Rng rng(13);
  FastTextConfig config;
  config.dim = 8;
  FastTextEmbedding embedding(config, &rng);
  auto a = embedding.Buckets("sandisk");
  auto b = embedding.Buckets("sandisk");
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 1u);  // word bucket + n-grams
}

TEST(FastTextTest, SharedSubwordsGiveCloserVectors) {
  Rng rng(14);
  FastTextConfig config;
  config.dim = 16;
  FastTextEmbedding embedding(config, &rng);
  ag::NoGradGuard guard;
  ag::Var vecs =
      embedding.Forward({"compactflash", "compactflashy", "stroller"});
  auto distance = [&](int64_t i, int64_t j) {
    double acc = 0.0;
    for (int64_t c = 0; c < 16; ++c) {
      double d = vecs.value().at(i, c) - vecs.value().at(j, c);
      acc += d * d;
    }
    return acc;
  };
  EXPECT_LT(distance(0, 1), distance(0, 2));
}

TEST(OptimizerTest, SgdReducesQuadratic) {
  ag::Var w = ag::Parameter(Tensor::FromVector({5.0f}));
  Sgd sgd({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    w.ZeroGrad();
    ag::Var loss = ag::MeanAll(ag::Mul(w, w));
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-3f);
}

TEST(OptimizerTest, AdamReducesQuadratic) {
  ag::Var w = ag::Parameter(Tensor::FromVector({5.0f, -3.0f}));
  Adam adam({w}, 0.2f);
  for (int i = 0; i < 200; ++i) {
    w.ZeroGrad();
    ag::Var loss = ag::MeanAll(ag::Mul(w, w));
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(w.value()[1], 0.0f, 1e-2f);
}

TEST(OptimizerTest, ClipGradNormScales) {
  ag::Var w = ag::Parameter(Tensor::FromVector({3.0f, 4.0f}));
  ag::Var loss = ag::MeanAll(ag::Mul(w, w));  // grad = 2w/2 = w = (3,4), norm 5
  loss.Backward();
  float before = ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(before, 5.0f, 1e-4f);
  EXPECT_NEAR(w.grad().Norm(), 1.0f, 1e-4f);
}

TEST(OptimizerTest, LinearWarmupDecaySchedule) {
  LinearWarmupDecay schedule(1.0f, 10, 100);
  EXPECT_NEAR(schedule.LearningRate(0), 0.1f, 1e-5f);
  EXPECT_NEAR(schedule.LearningRate(9), 1.0f, 1e-5f);
  EXPECT_NEAR(schedule.LearningRate(10), 1.0f, 1e-5f);
  EXPECT_GT(schedule.LearningRate(50), schedule.LearningRate(90));
  EXPECT_EQ(schedule.LearningRate(100), 0.0f);
  EXPECT_EQ(schedule.LearningRate(1000), 0.0f);
}

}  // namespace
}  // namespace nn
}  // namespace emba
