// Tier-1 tests for the observability layer (util/metrics + util/trace):
// exact counter/histogram totals under concurrent updates, span nesting,
// the disabled-tracer no-op contract, JSON validity of both export formats,
// end-to-end instrumentation coverage of a real training run, and
// keep-last-K checkpoint rotation.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "tensor/kernels.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace emba {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (recursive descent). Accepts exactly the
// JSON grammar; enough to assert "this export parses", without a JSON
// dependency the container doesn't have.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (!Peek('"')) return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      pos_ += s_[pos_] == '\\' ? 2 : 1;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      digits |= std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0;
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek('}')) return ++pos_, true;
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek(']')) return ++pos_, true;
      return false;
    }
  }
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Extracts (ts, dur) of the first exported event whose name matches, from
// the one-event-per-line format WriteJson emits.
bool FindSpan(const std::string& trace_json, const std::string& name,
              double* ts, double* dur) {
  std::istringstream lines(trace_json);
  std::string line;
  const std::string needle = "\"name\": \"" + name + "\"";
  while (std::getline(lines, line)) {
    if (line.find(needle) == std::string::npos) continue;
    const size_t ts_pos = line.find("\"ts\": ");
    const size_t dur_pos = line.find("\"dur\": ");
    if (ts_pos == std::string::npos || dur_pos == std::string::npos) continue;
    *ts = std::stod(line.substr(ts_pos + 6));
    *dur = std::stod(line.substr(dur_pos + 7));
    return true;
  }
  return false;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::Registry::Global().ResetAllForTest();
    trace::Stop();
  }
  void TearDown() override {
    trace::Stop();
    metrics::SetEnabled(false);
    kernels::ResetBackend();
    metrics::Registry::Global().ResetAllForTest();
  }
};

// ---------------------------------------------------------------------------
// Registry correctness under concurrency.

TEST_F(ObservabilityTest, CounterIsExactUnderConcurrentIncrements) {
  SetGlobalThreads(4);
  metrics::Counter& counter = metrics::GetCounter("test.concurrent_counter");
  counter.ResetForTest();
  constexpr int64_t kItems = 20000;
  GlobalThreadPool().ParallelFor(0, kItems, /*grain=*/64,
                                 [&](int64_t) { counter.Increment(); });
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kItems));
  SetGlobalThreads(0);
}

TEST_F(ObservabilityTest, HistogramIsExactUnderConcurrentObserves) {
  SetGlobalThreads(4);
  metrics::Histogram& histogram = metrics::GetHistogram(
      "test.concurrent_histogram_ms", metrics::DefaultLatencyBucketsMs());
  histogram.ResetForTest();
  constexpr int64_t kItems = 20000;
  GlobalThreadPool().ParallelFor(0, kItems, /*grain=*/64, [&](int64_t i) {
    histogram.Observe(static_cast<double>(i % 100));
  });
  const metrics::Histogram::Snapshot snapshot = histogram.GetSnapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kItems));
  uint64_t bucket_total = 0;
  for (uint64_t c : snapshot.bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, static_cast<uint64_t>(kItems));
  // Percentiles are ordered and inside the observed range.
  EXPECT_LE(snapshot.p50, snapshot.p95);
  EXPECT_LE(snapshot.p95, snapshot.p99);
  EXPECT_GT(snapshot.p50, 0.0);
  EXPECT_LE(snapshot.p99, 100.0 + 1e-9);
  SetGlobalThreads(0);
}

TEST_F(ObservabilityTest, GaugeSetAndAdd) {
  metrics::Gauge& gauge = metrics::GetGauge("test.gauge");
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(1.25);
  gauge.Add(1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 5.0);
}

TEST_F(ObservabilityTest, RegistryReturnsSameObjectForSameName) {
  EXPECT_EQ(&metrics::GetCounter("test.same"), &metrics::GetCounter("test.same"));
  EXPECT_EQ(&metrics::GetHistogram("test.same_h"),
            &metrics::GetHistogram("test.same_h"));
}

TEST_F(ObservabilityTest, ExponentialBucketsShape) {
  const std::vector<double> bounds = metrics::ExponentialBuckets(1.0, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 16.0);
  for (size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST_F(ObservabilityTest, MetricsJsonIsValidAndContainsMetrics) {
  metrics::GetCounter("test.json_counter").Increment(7);
  metrics::GetGauge("test.json_gauge").Set(1.5);
  metrics::GetHistogram("test.json_histogram_ms").Observe(3.0);
  const std::string json = metrics::Registry::Global().ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.json_counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("test.json_gauge"), std::string::npos);
  EXPECT_NE(json.find("test.json_histogram_ms"), std::string::npos);

  const std::string path = "/tmp/emba_observability_metrics.json";
  std::filesystem::remove(path);
  ASSERT_TRUE(metrics::DumpMetricsJson(path).ok());
  EXPECT_TRUE(JsonValidator(ReadFile(path)).Valid());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Tracer contracts.

TEST_F(ObservabilityTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(trace::Enabled());
  const size_t before = trace::BufferedEventCount();
  for (int i = 0; i < 100; ++i) {
    EMBA_TRACE_SPAN("test/should_not_record");
    EMBA_TRACE_SPAN_ARG("test/should_not_record_arg", "i", i);
  }
  EXPECT_EQ(trace::BufferedEventCount(), before);
}

TEST_F(ObservabilityTest, SpanNestingIsContainedInExport) {
  trace::Start();
  {
    EMBA_TRACE_SPAN("test/outer");
    {
      EMBA_TRACE_SPAN("test/inner");
      // Make both spans long enough that µs rounding in the export cannot
      // invert the containment.
      volatile double sink = 0.0;
      for (int i = 0; i < 200000; ++i) sink = sink + static_cast<double>(i);
      (void)sink;
    }
  }
  trace::Stop();
  const std::string path = "/tmp/emba_observability_nesting.json";
  std::filesystem::remove(path);
  ASSERT_TRUE(trace::WriteJson(path).ok());
  const std::string json = ReadFile(path);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  double outer_ts = 0.0, outer_dur = 0.0, inner_ts = 0.0, inner_dur = 0.0;
  ASSERT_TRUE(FindSpan(json, "test/outer", &outer_ts, &outer_dur));
  ASSERT_TRUE(FindSpan(json, "test/inner", &inner_ts, &inner_dur));
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
  std::filesystem::remove(path);
}

TEST_F(ObservabilityTest, DynamicSpanNamesAreCopied) {
  trace::Start();
  {
    std::string name = "test/dynamic_";
    name += "abc";
    trace::ScopedSpanCopy span(name);
  }
  trace::Stop();
  const std::string path = "/tmp/emba_observability_dynamic.json";
  std::filesystem::remove(path);
  ASSERT_TRUE(trace::WriteJson(path).ok());
  EXPECT_NE(ReadFile(path).find("test/dynamic_abc"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(ObservabilityTest, ThreadIdIsStablePerThread) {
  const int id_a = trace::CurrentThreadId();
  EXPECT_EQ(trace::CurrentThreadId(), id_a);
  int id_b = -1;
  std::thread other([&] { id_b = trace::CurrentThreadId(); });
  other.join();
  EXPECT_NE(id_b, id_a);
}

TEST_F(ObservabilityTest, RingWrapDropsOldestAndCountsExactly) {
  // Drive one thread's ring exactly kExtra events past capacity: the wrap
  // must (1) count each overwrite — no more, no less — in both the global
  // drop count and the `trace.events_dropped` counter, (2) overwrite
  // oldest-first so the survivors are the newest capacity-sized suffix, and
  // (3) still export valid Chrome JSON carrying the drop metadata event.
  constexpr int kExtra = 100;
  const int total = static_cast<int>(trace::RingCapacityPerThread()) + kExtra;
  trace::Start();
  ASSERT_EQ(trace::DroppedEventCount(), 0u);
  // A dedicated thread gets a fresh (empty) ring, so the overflow count is
  // exact regardless of what the main thread recorded before.
  std::thread recorder([total] {
    for (int i = 0; i < total; ++i) {
      EMBA_TRACE_SPAN_ARG("test/wrap", "i", i);
    }
  });
  recorder.join();
  trace::Stop();

  EXPECT_EQ(trace::DroppedEventCount(), static_cast<uint64_t>(kExtra));
  EXPECT_EQ(metrics::GetCounter("trace.events_dropped").Value(),
            static_cast<uint64_t>(kExtra));

  const std::string path = "/tmp/emba_observability_ring_wrap.json";
  std::filesystem::remove(path);
  ASSERT_TRUE(trace::WriteJson(path).ok());
  const std::string json = ReadFile(path);
  EXPECT_TRUE(JsonValidator(json).Valid());
  // Oldest-first overwrite: events 0..kExtra-1 are gone, kExtra.. survive.
  // The closing brace pins the exact arg value ("i": 99 vs "i": 990).
  EXPECT_EQ(json.find("\"i\": " + std::to_string(kExtra - 1) + "}"),
            std::string::npos);
  EXPECT_NE(json.find("\"i\": " + std::to_string(kExtra) + "}"),
            std::string::npos);
  EXPECT_NE(json.find("\"i\": " + std::to_string(total - 1) + "}"),
            std::string::npos);
  // The drop is never silent in the export.
  EXPECT_NE(json.find("emba.trace.dropped"), std::string::npos);
  EXPECT_NE(json.find("{\"events\": " + std::to_string(kExtra) + "}"),
            std::string::npos);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// End-to-end: a real (tiny) training run with metrics + tracing on must
// export valid JSON containing the spans the acceptance criteria name.

core::EncodedDataset TinyEncodedDataset() {
  data::GeneratorOptions options;
  options.seed = 33;
  options.size_factor = 0.3;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
  core::EncodeOptions encode_options;
  encode_options.max_len = 24;
  encode_options.wordpiece_vocab = 400;
  return core::EncodeDataset(dataset, encode_options);
}

TEST_F(ObservabilityTest, TrainingRunExportsInstrumentedMetricsAndTrace) {
  SetGlobalThreads(4);
  metrics::SetEnabled(true);
  trace::Start();
  // Re-resolve the kernel dispatch *after* enabling, so the counting shim is
  // installed and the dispatch span lands in this trace.
  kernels::ResetBackend();

  core::EncodedDataset dataset = TinyEncodedDataset();
  Rng rng(5);
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 24;
  auto model = core::CreateModel("emba", budget,
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config;
  config.max_epochs = 1;
  config.heartbeat_seconds = 0.0;
  core::Trainer trainer(model->get(), &dataset, config);
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());
  trace::Stop();

  // Metrics: hot-path counters moved during the run.
  EXPECT_GT(metrics::GetCounter("trainer.pairs_trained").Value(), 0u);
  EXPECT_GT(metrics::GetCounter("trainer.steps").Value(), 0u);
  EXPECT_EQ(metrics::GetCounter("trainer.epochs").Value(), 1u);
  EXPECT_GT(metrics::GetCounter("scoring.pairs_scored").Value(), 0u);
  const uint64_t matmul_calls =
      metrics::GetCounter("kernels.calls.matmul_block_axpy").Value() +
      metrics::GetCounter("kernels.calls.matmul_block_dot").Value() +
      metrics::GetCounter("kernels.calls.dot").Value();
  EXPECT_GT(matmul_calls, 0u);
  EXPECT_GT(metrics::GetHistogram("trainer.step_ms").Count(), 0u);
  EXPECT_GT(metrics::GetHistogram("scoring.batch_latency_ms").Count(), 0u);
  EXPECT_GT(metrics::GetHistogram("threadpool.queue_wait_us").Count(), 0u);

  const std::string metrics_path = "/tmp/emba_observability_e2e_metrics.json";
  const std::string trace_path = "/tmp/emba_observability_e2e_trace.json";
  std::filesystem::remove(metrics_path);
  std::filesystem::remove(trace_path);
  ASSERT_TRUE(metrics::DumpMetricsJson(metrics_path).ok());
  ASSERT_TRUE(trace::WriteJson(trace_path).ok());

  const std::string metrics_json = ReadFile(metrics_path);
  EXPECT_TRUE(JsonValidator(metrics_json).Valid());
  EXPECT_NE(metrics_json.find("trainer.pairs_trained"), std::string::npos);
  EXPECT_NE(metrics_json.find("kernels.calls."), std::string::npos);

  const std::string trace_json = ReadFile(trace_path);
  EXPECT_TRUE(JsonValidator(trace_json).Valid());
  for (const char* span :
       {"trainer/run", "trainer/epoch", "trainer/step", "trainer/evaluate",
        "core/batch_forward", "kernels/dispatch", "threadpool/queue_wait",
        "threadpool/parallel_for"}) {
    EXPECT_NE(trace_json.find(std::string("\"name\": \"") + span + "\""),
              std::string::npos)
        << "missing span " << span;
  }

  std::filesystem::remove(metrics_path);
  std::filesystem::remove(trace_path);
  SetGlobalThreads(0);
}

TEST_F(ObservabilityTest, HeartbeatLogsProgressWithTimestampedPrefix) {
  core::EncodedDataset dataset = TinyEncodedDataset();
  Rng rng(8);
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 24;
  auto model = core::CreateModel("emba", budget,
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config;
  config.max_epochs = 1;
  // Every elapsed-time check beats this threshold, so the first step emits.
  config.heartbeat_seconds = 1e-9;
  core::Trainer trainer(model->get(), &dataset, config);
  ::testing::internal::CaptureStderr();
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());
  const std::string log = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("heartbeat: epoch 0"), std::string::npos) << log;
  EXPECT_NE(log.find("pairs/s"), std::string::npos);
  EXPECT_NE(log.find("eta<="), std::string::npos);
  // Log prefix format: "[INFO 2026-08-07 14:03:21.482 t0 trainer.cc:..."
  EXPECT_NE(log.find("[INFO 20"), std::string::npos);
  const size_t prefix = log.find("[INFO 20");
  EXPECT_NE(log.find(" t", prefix), std::string::npos);
  EXPECT_NE(log.find("trainer.cc:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint rotation (keep-last-K versioned siblings).

size_t CountVersionedCheckpoints(const std::string& anchor) {
  const std::filesystem::path anchor_path(anchor);
  const std::string prefix = anchor_path.filename().string() + ".e";
  size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(anchor_path.parent_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

TEST_F(ObservabilityTest, CheckpointRotationKeepsLastK) {
  const std::string dir = "/tmp/emba_observability_rotation";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string anchor = dir + "/model.ckpt";

  core::EncodedDataset dataset = TinyEncodedDataset();
  Rng rng(6);
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 24;
  auto model = core::CreateModel("emba", budget,
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config;
  config.max_epochs = 4;
  config.min_epochs = 4;
  config.patience = 10;
  config.heartbeat_seconds = 0.0;
  config.checkpoint_path = anchor;
  config.checkpoint_every = 1;
  config.checkpoint_keep_last = 2;
  core::Trainer trainer(model->get(), &dataset, config);
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());

  EXPECT_TRUE(std::filesystem::exists(anchor));
  EXPECT_EQ(CountVersionedCheckpoints(anchor), 2u);
  // The survivors are the two newest epochs.
  EXPECT_TRUE(std::filesystem::exists(anchor + ".e00003"));
  EXPECT_TRUE(std::filesystem::exists(anchor + ".e00004"));
  EXPECT_GT(metrics::GetCounter("trainer.checkpoints_rotated").Value(), 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(ObservabilityTest, CheckpointKeepLastZeroKeepsAllVersions) {
  const std::string dir = "/tmp/emba_observability_rotation_all";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string anchor = dir + "/model.ckpt";

  core::EncodedDataset dataset = TinyEncodedDataset();
  Rng rng(7);
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 24;
  auto model = core::CreateModel("emba", budget,
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config;
  config.max_epochs = 3;
  config.min_epochs = 3;
  config.patience = 10;
  config.heartbeat_seconds = 0.0;
  config.checkpoint_path = anchor;
  config.checkpoint_every = 1;
  core::Trainer trainer(model->get(), &dataset, config);
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());

  EXPECT_EQ(CountVersionedCheckpoints(anchor), 3u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace emba
