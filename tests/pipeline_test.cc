// Integration tests for the dedupe pipeline (blocking + matcher +
// clustering), CSV split round-trip, and the self-training loop.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/registry.h"
#include "core/self_training.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "pipeline/dedupe.h"

namespace emba {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions options;
    options.seed = 71;
    raw_ = data::MakeWdc(data::WdcCategory::kComputers,
                         data::WdcSize::kMedium, options);
    core::EncodeOptions encode_options;
    encode_options.max_len = 48;
    encode_options.wordpiece_vocab = 1200;
    encoded_ = core::EncodeDataset(raw_, encode_options);

    Rng rng(72);
    core::ModelBudget budget;
    budget.dim = 32;
    budget.layers = 2;
    budget.heads = 4;
    budget.max_len = 48;
    auto model = core::CreateModel("emba", budget,
                                   encoded_.wordpiece->vocab().size(),
                                   encoded_.num_id_classes, &rng);
    ASSERT_TRUE(model.ok());
    model_ = std::move(*model);
    core::TrainConfig config;
    config.max_epochs = 8;
    config.patience = 8;
    core::Trainer trainer(model_.get(), &encoded_, config);
    trained_f1_ = trainer.Run().test.em.f1;
  }

  data::EmDataset raw_;
  core::EncodedDataset encoded_;
  std::unique_ptr<core::EmModel> model_;
  double trained_f1_ = 0.0;
};

TEST_F(PipelineTest, DedupeClustersBeatBlindBaseline) {
  // Two small "tables" from test-split records.
  std::vector<data::Record> left, right;
  for (const auto& pair : raw_.test) {
    left.push_back(pair.left);
    right.push_back(pair.right);
    if (left.size() >= 40) break;
  }
  block::TokenBlocker blocker;
  pipeline::DedupeResult result = pipeline::DedupeTables(
      model_.get(), encoded_, blocker, left, right, {.match_threshold = 0.5});
  ASSERT_EQ(result.left_clusters.size(), left.size());
  ASSERT_EQ(result.right_clusters.size(), right.size());
  EXPECT_GT(result.scored.size(), 0u);
  EXPECT_GT(result.num_clusters, 1u);

  pipeline::ClusterQuality quality =
      pipeline::EvaluateClusters(left, right, result);
  // A trained matcher must do meaningfully better than random pairing.
  EXPECT_GT(quality.f1, 0.2);
  // All scores are valid probabilities.
  for (const auto& scored : result.scored) {
    EXPECT_GE(scored.match_probability, 0.0);
    EXPECT_LE(scored.match_probability, 1.0);
  }
}

TEST_F(PipelineTest, ThresholdMonotonicity) {
  std::vector<data::Record> left, right;
  for (const auto& pair : raw_.test) {
    left.push_back(pair.left);
    right.push_back(pair.right);
    if (left.size() >= 25) break;
  }
  block::TokenBlocker blocker;
  auto strict = pipeline::DedupeTables(model_.get(), encoded_, blocker, left,
                                       right, {.match_threshold = 0.9});
  auto loose = pipeline::DedupeTables(model_.get(), encoded_, blocker, left,
                                      right, {.match_threshold = 0.1});
  EXPECT_LE(strict.predicted_matches, loose.predicted_matches);
  EXPECT_GE(strict.num_clusters, loose.num_clusters);
}

TEST(CsvRoundTripTest, SaveLoadPreservesPairs) {
  data::GeneratorOptions options;
  options.seed = 9;
  auto dataset = data::MakeBooks(options);
  const std::string path = "/tmp/emba_roundtrip.csv";
  ASSERT_TRUE(data::SaveSplitCsv(dataset.train, path).ok());
  auto loaded = data::LoadSplitCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), dataset.train.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i].match, dataset.train[i].match);
    EXPECT_EQ((*loaded)[i].left.Description(),
              dataset.train[i].left.Description());
    EXPECT_EQ((*loaded)[i].left.id_class, dataset.train[i].left.id_class);
    EXPECT_EQ((*loaded)[i].right.entity_id,
              dataset.train[i].right.entity_id);
  }
  std::remove(path.c_str());
}

TEST(CsvRoundTripTest, LoadRejectsMissingColumns) {
  const std::string path = "/tmp/emba_badcsv.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("label,description_1\n1,only one side\n", f);
  std::fclose(f);
  auto loaded = data::LoadSplitCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SelfTrainingTest, PseudoLabelsAreMostlyCorrectAndHelpOrHold) {
  data::GeneratorOptions options;
  options.seed = 31;
  auto raw = data::MakeWdc(data::WdcCategory::kComputers,
                           data::WdcSize::kMedium, options);
  core::EncodeOptions encode_options;
  encode_options.max_len = 48;
  encode_options.wordpiece_vocab = 1200;
  core::EncodedDataset full = core::EncodeDataset(raw, encode_options);

  // Keep 35% of the training pairs labeled; the rest become the pool.
  core::EncodedDataset labeled = full;
  std::vector<core::PairSample> pool;
  labeled.train.clear();
  for (size_t i = 0; i < full.train.size(); ++i) {
    if (i % 20 < 7) labeled.train.push_back(full.train[i]);
    else pool.push_back(full.train[i]);
  }

  Rng rng(32);
  core::ModelBudget budget;
  budget.dim = 32;
  budget.layers = 2;
  budget.heads = 4;
  budget.max_len = 48;
  auto model = core::CreateModel("emba", budget,
                                 full.wordpiece->vocab().size(),
                                 full.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::SelfTrainingConfig config;
  config.rounds = 1;
  config.confidence = 0.9;
  config.train.max_epochs = 6;
  config.train.patience = 6;
  core::SelfTrainingResult result =
      core::SelfTrain(model->get(), labeled, pool, config);
  ASSERT_EQ(result.rounds.size(), 1u);
  const auto& round = result.rounds[0];
  EXPECT_GT(round.pseudo_labels_added, 0u);
  // High-confidence pseudo-labels should be mostly right.
  EXPECT_GT(static_cast<double>(round.pseudo_labels_correct) /
                static_cast<double>(round.pseudo_labels_added),
            0.7);
}

}  // namespace
}  // namespace emba
