// Unit tests for the data module: union-find clustering, LRID, dataset
// plumbing, imbalance resampling, noise channels, and every synthetic
// generator's statistical regime (parameterized across all dataset names).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "data/cluster.h"
#include "data/generator.h"
#include "data/synth_text.h"
#include "util/strings.h"

namespace emba {
namespace data {
namespace {

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already merged
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_EQ(uf.Find(0), uf.Find(2));
  EXPECT_NE(uf.Find(0), uf.Find(3));
}

TEST(UnionFindTest, TransitiveClosureClusterIds) {
  // (A,B), (B,C) matched => one cluster {A,B,C}; D,E singletons.
  auto ids = AssignClusterIds(5, {{0, 1}, {1, 2}});
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[1], ids[2]);
  EXPECT_NE(ids[0], ids[3]);
  EXPECT_NE(ids[3], ids[4]);
  std::set<int> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 3u);
  // Dense ids in [0, k).
  for (int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 3);
  }
}

TEST(LridTest, BalancedIsZero) {
  EXPECT_NEAR(LridFromCounts({10, 10, 10, 10}), 0.0, 1e-9);
}

TEST(LridTest, ImbalanceIncreasesLrid) {
  double mild = LridFromCounts({12, 10, 8, 10});
  double severe = LridFromCounts({37, 1, 1, 1});
  EXPECT_GT(mild, 0.0);
  EXPECT_GT(severe, mild);
  // Upper bound ~ 2 ln C as one class takes everything.
  EXPECT_LT(severe, 2.0 * std::log(4.0));
}

TEST(LridTest, IgnoresEmptyClasses) {
  EXPECT_NEAR(LridFromCounts({5, 5, 0, 0}), 0.0, 1e-9);
}

TEST(RecordTest, DescriptionConcatenatesValues) {
  Record record;
  record.attributes = {{"title", "sandisk card"}, {"brand", ""},
                       {"price", "$9.95"}};
  EXPECT_EQ(record.Description(), "sandisk card $9.95");
  EXPECT_EQ(record.Attribute("title"), "sandisk card");
  EXPECT_EQ(record.Attribute("missing"), "");
}

TEST(DatasetTest, SplitFractions) {
  std::vector<LabeledPair> pairs(100);
  for (size_t i = 0; i < pairs.size(); ++i) pairs[i].match = i % 4 == 0;
  Rng rng(1);
  EmDataset dataset;
  SplitPairs(pairs, 0.7, 0.1, &rng, &dataset);
  EXPECT_EQ(dataset.train.size(), 70u);
  EXPECT_EQ(dataset.valid.size(), 10u);
  EXPECT_EQ(dataset.test.size(), 20u);
}

TEST(DatasetTest, PosNegCounting) {
  EmDataset dataset;
  dataset.train.resize(10);
  for (int i = 0; i < 3; ++i) dataset.train[static_cast<size_t>(i)].match = true;
  EXPECT_EQ(dataset.TrainPositives(), 3);
  EXPECT_EQ(dataset.TrainNegatives(), 7);
  EXPECT_NEAR(dataset.PosNegRatio(), 3.0 / 7.0, 1e-9);
}

TEST(DatasetTest, DownsamplePositivesHitsTargetRatio) {
  EmDataset dataset;
  dataset.train.resize(130);
  for (int i = 0; i < 30; ++i) dataset.train[static_cast<size_t>(i)].match = true;
  Rng rng(2);
  EmDataset reduced = DownsamplePositives(dataset, 0.05, &rng);
  EXPECT_EQ(reduced.TrainNegatives(), 100);
  EXPECT_LE(reduced.PosNegRatio(), 0.05 + 1e-9);
  EXPECT_GE(reduced.TrainPositives(), 1);
}

TEST(DatasetTest, SaveSplitCsvWritesRows) {
  EmDataset dataset = MakeBikes({.seed = 3, .size_factor = 0.5});
  const std::string path = "/tmp/emba_split_test.csv";
  ASSERT_TRUE(SaveSplitCsv(dataset.train, path).ok());
  std::remove(path.c_str());
}

// ---------- noise channels ----------

TEST(SynthTextTest, PseudoWordsAreDeterministicPerSeed) {
  Rng a(7), b(7);
  EXPECT_EQ(MakePseudoWord(&a, 3), MakePseudoWord(&b, 3));
}

TEST(SynthTextTest, ModelNumbersContainDigits) {
  Rng rng(8);
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) {
    std::string model = MakeModelNumber(&rng);
    EXPECT_GE(model.size(), 4u);
    bool has_digit = false;
    for (char c : model) has_digit |= (c >= '0' && c <= '9');
    EXPECT_TRUE(has_digit) << model;
    seen.insert(model);
  }
  EXPECT_GT(seen.size(), 45u);  // near-unique
}

TEST(SynthTextTest, TypoChangesLongWordsOnly) {
  Rng rng(9);
  EXPECT_EQ(Typo("cf", &rng), "cf");
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    if (Typo("compactflash", &rng) != "compactflash") ++changed;
  }
  EXPECT_GT(changed, 15);
}

TEST(SynthTextTest, AbbreviationTable) {
  EXPECT_EQ(Abbreviate("compactflash"), "cf");
  EXPECT_EQ(Abbreviate("proceedings"), "proc");
  EXPECT_EQ(Abbreviate("sandisk"), "sandisk");  // unknown: unchanged
}

TEST(SynthTextTest, DropWordsNeverEmptiesOutput) {
  Rng rng(10);
  std::vector<std::string> words = {"a", "b", "c"};
  for (int i = 0; i < 30; ++i) {
    auto kept = DropWords(words, 0.95, &rng);
    EXPECT_GE(kept.size(), 1u);
  }
}

TEST(SynthTextTest, ZipfWeightsDecreasing) {
  auto weights = ZipfWeights(5, 1.3);
  for (size_t i = 1; i < weights.size(); ++i) {
    EXPECT_LT(weights[i], weights[i - 1]);
  }
}

// ---------- generators (parameterized over every dataset) ----------

class GeneratorTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorTest, ProducesValidDataset) {
  GeneratorOptions options;
  options.seed = 11;
  auto result = MakeByName(GetParam(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  const EmDataset& dataset = *result;
  EXPECT_FALSE(dataset.train.empty());
  EXPECT_FALSE(dataset.valid.empty());
  EXPECT_FALSE(dataset.test.empty());
  EXPECT_GT(dataset.num_id_classes, 1);
  EXPECT_GT(dataset.TrainPositives(), 0);
  EXPECT_GT(dataset.TrainNegatives(), 0);
  // Negatives dominate, as in every benchmark of Table 1.
  EXPECT_LT(dataset.PosNegRatio(), 1.0);
  for (const auto& split : {dataset.train, dataset.valid, dataset.test}) {
    for (const auto& pair : split) {
      EXPECT_FALSE(pair.left.Description().empty());
      EXPECT_FALSE(pair.right.Description().empty());
      EXPECT_GE(pair.left.id_class, 0);
      EXPECT_LT(pair.left.id_class, dataset.num_id_classes);
      EXPECT_GE(pair.right.id_class, 0);
      EXPECT_LT(pair.right.id_class, dataset.num_id_classes);
      if (pair.match) {
        EXPECT_EQ(pair.left.entity_id, pair.right.entity_id);
        EXPECT_EQ(pair.left.id_class, pair.right.id_class);
      } else {
        EXPECT_NE(pair.left.entity_id, pair.right.entity_id);
      }
    }
  }
}

TEST_P(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.seed = 12;
  auto a = MakeByName(GetParam(), options);
  auto b = MakeByName(GetParam(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->train.size(), b->train.size());
  for (size_t i = 0; i < a->train.size(); ++i) {
    EXPECT_EQ(a->train[i].left.Description(), b->train[i].left.Description());
    EXPECT_EQ(a->train[i].match, b->train[i].match);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GeneratorTest,
    ::testing::Values("wdc_computers_small", "wdc_computers_xlarge",
                      "wdc_cameras_medium", "wdc_watches_large",
                      "wdc_shoes_small", "abt_buy", "dblp_scholar",
                      "dblp_scholar_venue", "companies", "baby_products",
                      "bikes", "books"));

TEST(GeneratorRegimeTest, WdcSizesGrow) {
  GeneratorOptions options;
  auto small = MakeWdc(WdcCategory::kComputers, WdcSize::kSmall, options);
  auto xlarge = MakeWdc(WdcCategory::kComputers, WdcSize::kXlarge, options);
  EXPECT_LT(small.train.size(), xlarge.train.size());
  EXPECT_LT(small.num_id_classes, xlarge.num_id_classes);
}

TEST(GeneratorRegimeTest, LridOrderingMatchesPaper) {
  // Table 1: WDC is near-balanced; dblp-scholar and bikes are the most
  // imbalanced families.
  GeneratorOptions options;
  double wdc = Lrid(MakeWdc(WdcCategory::kComputers, WdcSize::kXlarge, options));
  double dblp = Lrid(MakeDblpScholar(options));
  double bikes = Lrid(MakeBikes(options));
  EXPECT_LT(wdc, 0.6);
  EXPECT_GT(dblp, 1.0);
  EXPECT_GT(bikes, 1.0);
  EXPECT_GT(dblp, wdc);
}

TEST(GeneratorRegimeTest, VenueOnlyVariantShrinksClassSpace) {
  GeneratorOptions options;
  auto full = MakeDblpScholar(options);
  auto venue = MakeDblpScholarVenueOnly(options);
  EXPECT_LT(venue.num_id_classes, full.num_id_classes);
}

TEST(GeneratorRegimeTest, CompaniesHasTinyClusters) {
  GeneratorOptions options;
  auto companies = MakeCompanies(options);
  // One class per company — the auxiliary task the paper reports as
  // near-impossible for JointBERT.
  std::unordered_map<int, int> counts;
  for (const auto& pair : companies.train) {
    ++counts[pair.left.id_class];
    ++counts[pair.right.id_class];
  }
  double mean = 0.0;
  for (const auto& [cls, count] : counts) mean += count;
  mean /= static_cast<double>(counts.size());
  EXPECT_LT(mean, 8.0);
}

TEST(GeneratorRegimeTest, PositivePairsShareModelTokens) {
  // The decisive signal: two offers of the same product share the model
  // number (modulo typos) far more often than hard negatives do.
  GeneratorOptions options;
  auto dataset = MakeWdc(WdcCategory::kComputers, WdcSize::kMedium, options);
  int pos_share = 0, pos_total = 0, neg_share = 0, neg_total = 0;
  for (const auto& pair : dataset.train) {
    std::set<std::string> words1, words2;
    for (auto& w : SplitWhitespace(pair.left.Description())) words1.insert(w);
    for (auto& w : SplitWhitespace(pair.right.Description())) words2.insert(w);
    int digit_overlap = 0;
    for (const auto& w : words1) {
      if (ContainsDigit(w) && w.size() >= 5 && words2.count(w)) ++digit_overlap;
    }
    if (pair.match) {
      pos_total++;
      pos_share += digit_overlap > 0;
    } else {
      neg_total++;
      neg_share += digit_overlap > 0;
    }
  }
  ASSERT_GT(pos_total, 0);
  ASSERT_GT(neg_total, 0);
  EXPECT_GT(static_cast<double>(pos_share) / pos_total,
            static_cast<double>(neg_share) / neg_total + 0.2);
}

TEST(GeneratorTest, AllDatasetNamesResolve) {
  GeneratorOptions options;
  options.size_factor = 0.5;
  for (const auto& name : AllDatasetNames()) {
    auto result = MakeByName(name, options);
    EXPECT_TRUE(result.ok()) << name;
  }
  EXPECT_FALSE(MakeByName("nope", options).ok());
  EXPECT_FALSE(MakeByName("wdc_computers_huge", options).ok());
}

TEST(CaseStudyTest, PairMatchesPaperExample) {
  LabeledPair pair = CaseStudyPair();
  EXPECT_FALSE(pair.match);
  EXPECT_NE(pair.left.Description().find("sandisk"), std::string::npos);
  EXPECT_NE(pair.right.Description().find("transcend"), std::string::npos);
  // Shared spec tokens that drown the brand signal.
  for (const char* shared : {"4gb", "50p", "cf", "compactflash", "card"}) {
    EXPECT_NE(pair.left.Description().find(shared), std::string::npos);
    EXPECT_NE(pair.right.Description().find(shared), std::string::npos);
  }
}

}  // namespace
}  // namespace data
}  // namespace emba
