// Tier-1 tests for the live observability server (util/http_server +
// util/observability), the Prometheus exposition (util/metrics), the
// sampling profiler (util/profiler), rich span args and the periodic
// metrics flush: exposition syntax + label escaping, snapshot consistency
// under a real concurrent training run (histogram bucket sum == count on
// every scrape), /healthz state transitions, profiler smoke, clean
// port-in-use errors, and the no-server-no-thread contract.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "util/http_server.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/profiler.h"
#include "util/trace.h"

namespace emba {

// Named spin target for the profiler smoke test. Out of the anonymous
// namespace and noinline on purpose: the symbol must reach the dynamic
// symbol table (-rdynamic) for backtrace_symbols to name it, and must not
// be folded into the std::thread trampoline.
__attribute__((noinline)) uint64_t ObsTestProfilerSpin(
    const std::atomic<bool>* stop) {
  uint64_t acc = 1;
  while (!stop->load(std::memory_order_relaxed)) {
    for (int i = 0; i < 4096; ++i) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    asm volatile("" : "+r"(acc));  // keep the loop un-optimizable
  }
  return acc;
}

namespace {

// ---------------------------------------------------------------------------
// Tiny blocking HTTP GET client (tests only).

struct HttpResult {
  int status = 0;
  std::string body;
};

Result<HttpResult> HttpGet(int port, const std::string& target) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::IOError("connect(port " + std::to_string(port) + ")");
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return Status::IOError("send()");
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  const size_t header_end = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/1.1 ", 0) != 0 || header_end == std::string::npos) {
    return Status::IOError("malformed response: " + raw.substr(0, 64));
  }
  HttpResult result;
  result.status = std::atoi(raw.c_str() + std::strlen("HTTP/1.1 "));
  result.body = raw.substr(header_end + 4);
  return result;
}

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (same grammar as observability_test's).

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (!Peek('"')) return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      pos_ += s_[pos_] == '\\' ? 2 : 1;
    }
    if (!Peek('"')) return false;
    ++pos_;
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (Peek('{')) return Object();
    if (Peek('[')) return Array();
    if (Peek('"')) return String();
    if (Literal("true") || Literal("false") || Literal("null")) return true;
    return Number();
  }
  bool Object() {
    ++pos_;
    SkipWs();
    if (Peek('}')) {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      break;
    }
    SkipWs();
    if (!Peek('}')) return false;
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;
    SkipWs();
    if (Peek(']')) {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      break;
    }
    SkipWs();
    if (!Peek(']')) return false;
    ++pos_;
    return true;
  }
  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Prometheus exposition checks shared by the syntax and concurrency tests.

// Asserts exposition-format shape line by line and the histogram invariant:
// for every <name>_count sample there is a <name>_bucket{le="+Inf"} sample
// with the identical value, and bucket values are nondecreasing (cumulative).
void CheckPrometheusExposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::map<std::string, uint64_t> inf_buckets;
  std::map<std::string, uint64_t> counts;
  std::string last_bucket_name;
  uint64_t last_bucket_value = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "sample without value: " << line;
    const std::string name_and_labels = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    // Every exported name carries the emba_ prefix and sanitized charset.
    ASSERT_EQ(name_and_labels.rfind("emba_", 0), 0u) << line;
    const size_t brace = name_and_labels.find('{');
    const std::string name = name_and_labels.substr(0, brace);
    for (char c : name) {
      ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad metric name char in: " << line;
    }
    if (name.size() > 7 && name.substr(name.size() - 7) == "_bucket") {
      const uint64_t v = std::stoull(value);
      if (name != last_bucket_name) {
        last_bucket_name = name;
        last_bucket_value = 0;
      }
      ASSERT_GE(v, last_bucket_value)
          << "buckets must be cumulative: " << line;
      last_bucket_value = v;
      if (name_and_labels.find("le=\"+Inf\"") != std::string::npos) {
        inf_buckets[name.substr(0, name.size() - 7)] = v;
      }
    } else if (name.size() > 6 && name.substr(name.size() - 6) == "_count") {
      counts[name.substr(0, name.size() - 6)] = std::stoull(value);
    }
  }
  for (const auto& [base, count] : counts) {
    auto it = inf_buckets.find(base);
    ASSERT_NE(it, inf_buckets.end()) << base << " has _count but no +Inf";
    // The snapshot-consistency contract: never torn, on any scrape.
    ASSERT_EQ(it->second, count) << base << " +Inf bucket != count";
  }
}

core::EncodedDataset TinyEncodedDataset() {
  data::GeneratorOptions options;
  options.seed = 33;
  options.size_factor = 0.3;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
  core::EncodeOptions encode_options;
  encode_options.max_len = 24;
  encode_options.wordpiece_vocab = 400;
  return core::EncodeDataset(dataset, encode_options);
}

class ObsServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    StopObservabilityServer();
    StopPeriodicMetricsFlush();
    trace::Stop();
    metrics::SetMetricsOutputPath("");
  }
};

// ---------------------------------------------------------------------------
// Exposition format units

TEST_F(ObsServerTest, PrometheusMetricNameSanitizes) {
  EXPECT_EQ(metrics::PrometheusMetricName("trainer.step_ms"),
            "emba_trainer_step_ms");
  EXPECT_EQ(metrics::PrometheusMetricName("a.b-c d/e"), "emba_a_b_c_d_e");
  EXPECT_EQ(metrics::PrometheusMetricName("ok_name:sub"), "emba_ok_name:sub");
}

TEST_F(ObsServerTest, PrometheusLabelValueEscaping) {
  EXPECT_EQ(metrics::PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(metrics::PrometheusEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(metrics::PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(metrics::PrometheusEscapeLabelValue("a\nb"), "a\\nb");
}

TEST_F(ObsServerTest, QueryParamParsing) {
  EXPECT_EQ(http::QueryParam("seconds=2&clock=wall", "seconds", "9"), "2");
  EXPECT_EQ(http::QueryParam("seconds=2&clock=wall", "clock", "cpu"), "wall");
  EXPECT_EQ(http::QueryParam("seconds=2", "clock", "cpu"), "cpu");
  EXPECT_EQ(http::QueryParam("", "clock", "cpu"), "cpu");
  EXPECT_EQ(http::QueryParam("clock=", "clock", "cpu"), "cpu");
}

TEST_F(ObsServerTest, ExpositionContainsAllMetricKindsAndParses) {
  metrics::GetCounter("obs_test.requests").Increment(7);
  metrics::GetGauge("obs_test.temperature").Set(36.6);
  metrics::Histogram& hist =
      metrics::GetHistogram("obs_test.latency_ms", {1.0, 10.0, 100.0});
  hist.Observe(0.5);
  hist.Observe(5.0);
  hist.Observe(5000.0);  // +inf bucket

  const std::string text = metrics::Registry::Global().ToPrometheus();
  CheckPrometheusExposition(text);
  EXPECT_NE(text.find("# TYPE emba_obs_test_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE emba_obs_test_temperature gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE emba_obs_test_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("emba_obs_test_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("emba_obs_test_latency_ms_count 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshot consistency

TEST_F(ObsServerTest, SnapshotNeverTornUnderConcurrentObserves) {
  metrics::Histogram& hist = metrics::GetHistogram(
      "obs_test.hammer_ms", metrics::ExponentialBuckets(0.001, 4.0, 12));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&hist, &stop, t] {
      double v = 0.0007 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        hist.Observe(v);
        v = v * 1.37 + 0.0001;
        if (v > 1000.0) v = 0.0007;
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const metrics::Histogram::Snapshot snap = hist.GetSnapshot();
    uint64_t bucket_sum = 0;
    for (uint64_t c : snap.bucket_counts) bucket_sum += c;
    ASSERT_EQ(snap.count, bucket_sum) << "torn snapshot at iteration " << i;
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  EXPECT_EQ(metrics::Histogram::PercentileFromSnapshot(hist.GetSnapshot(),
                                                       0.5),
            hist.Percentile(0.5));
}

// ---------------------------------------------------------------------------
// Live server end-to-end: scrape concurrently with a real training run.

TEST_F(ObsServerTest, ConcurrentScrapeDuringTrainingIsConsistent) {
  metrics::SetEnabled(true);
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();
  ASSERT_GT(port, 0);

  std::atomic<bool> training_done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (!training_done.load(std::memory_order_acquire)) {
      auto result = HttpGet(port, "/metrics");
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->status, 200);
      CheckPrometheusExposition(result->body);
      scrapes.fetch_add(1);
    }
  });

  core::EncodedDataset dataset = TinyEncodedDataset();
  Rng rng(5);
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 24;
  auto model = core::CreateModel("emba", budget,
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config;
  config.max_epochs = 1;
  config.heartbeat_seconds = 0.0;
  core::Trainer trainer(model->get(), &dataset, config);
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());
  training_done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GT(scrapes.load(), 0);
  // The trainer published its run-state and stamped the heartbeat (the
  // server was running, so the per-step gate was open).
  EXPECT_EQ(GetHealthState(), HealthState::kTraining);
  const double age = HealthHeartbeatAgeSeconds();
  EXPECT_GE(age, 0.0);
  EXPECT_LT(age, 60.0);

  // /metrics.json serves valid JSON including the process gauges.
  auto json = HttpGet(port, "/metrics.json");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->status, 200);
  EXPECT_TRUE(JsonValidator(json->body).Valid());
  EXPECT_NE(json->body.find("process.rss_bytes"), std::string::npos);
  EXPECT_NE(json->body.find("process.uptime_seconds"), std::string::npos);
  EXPECT_NE(json->body.find("process.threads"), std::string::npos);

  // The Prometheus view carries them too.
  auto prom = HttpGet(port, "/metrics");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->body.find("emba_process_rss_bytes"), std::string::npos);
}

TEST_F(ObsServerTest, HealthzReflectsStateTransitions) {
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();

  SetHealthState(HealthState::kStarting);
  auto starting = HttpGet(port, "/healthz");
  ASSERT_TRUE(starting.ok());
  EXPECT_EQ(starting->status, 200);
  EXPECT_NE(starting->body.find("\"state\": \"starting\""),
            std::string::npos);
  EXPECT_TRUE(JsonValidator(starting->body).Valid());

  SetHealthState(HealthState::kScoring);
  HealthHeartbeat();
  auto scoring = HttpGet(port, "/healthz");
  ASSERT_TRUE(scoring.ok());
  EXPECT_EQ(scoring->status, 200);
  EXPECT_NE(scoring->body.find("\"state\": \"scoring\""), std::string::npos);
  EXPECT_EQ(scoring->body.find("\"heartbeat_age_seconds\": null"),
            std::string::npos);

  SetHealthState(HealthState::kDraining);
  auto draining = HttpGet(port, "/healthz");
  ASSERT_TRUE(draining.ok());
  EXPECT_EQ(draining->status, 503);
  EXPECT_NE(draining->body.find("\"state\": \"draining\""),
            std::string::npos);

  SetHealthState(HealthState::kStarting);
}

TEST_F(ObsServerTest, TracezServesTypedArgsAsJsonAndHtml) {
  trace::Start();
  {
    EMBA_TRACE_SPAN_ARGS("obs_test/span", {"step", 41}, {"lr", 0.25},
                         {"mode", "unit-test"});
  }
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();

  auto json = HttpGet(port, "/tracez?format=json");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->status, 200);
  EXPECT_TRUE(JsonValidator(json->body).Valid()) << json->body;
  EXPECT_NE(json->body.find("obs_test/span"), std::string::npos);
  EXPECT_NE(json->body.find("\"step\": 41"), std::string::npos);
  EXPECT_NE(json->body.find("\"lr\": 0.25"), std::string::npos);
  EXPECT_NE(json->body.find("\"mode\": \"unit-test\""), std::string::npos);

  auto html = HttpGet(port, "/tracez");
  ASSERT_TRUE(html.ok());
  EXPECT_EQ(html->status, 200);
  EXPECT_NE(html->body.find("obs_test/span"), std::string::npos);
  EXPECT_NE(html->body.find("mode=unit-test"), std::string::npos);
}

TEST_F(ObsServerTest, UnknownPathIs404AndBadMethodRejected) {
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();
  auto missing = HttpGet(port, "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto index = HttpGet(port, "/");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->status, 200);
  EXPECT_NE(index->body.find("/metrics"), std::string::npos);
}

TEST_F(ObsServerTest, BuildzReportsProvenanceAndEnvKnobs) {
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();

  auto buildz = HttpGet(port, "/buildz");
  ASSERT_TRUE(buildz.ok()) << buildz.status().ToString();
  ASSERT_EQ(buildz->status, 200);
  EXPECT_TRUE(JsonValidator(buildz->body).Valid()) << buildz->body;
  EXPECT_NE(buildz->body.find("\"git_sha\": \""), std::string::npos);
  EXPECT_NE(buildz->body.find("\"compiler\": \""), std::string::npos);
  EXPECT_NE(buildz->body.find("\"start_time_unix_seconds\": "),
            std::string::npos);
  EXPECT_NE(buildz->body.find("\"uptime_seconds\": "), std::string::npos);
  // Every knob the codebase reads is reported, set or not.
  for (const char* knob :
       {"EMBA_SIMD", "EMBA_INT8", "EMBA_RTRACE", "EMBA_ACCESS_LOG",
        "EMBA_RPCZ_K", "EMBA_NUM_THREADS"}) {
    EXPECT_NE(buildz->body.find("\"" + std::string(knob) + "\": "),
              std::string::npos)
        << knob << " missing from /buildz";
  }
}

TEST_F(ObsServerTest, RpczServesHtmlAndJsonWhenIdle) {
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();

  auto html = HttpGet(port, "/rpcz");
  ASSERT_TRUE(html.ok()) << html.status().ToString();
  EXPECT_EQ(html->status, 200);
  EXPECT_NE(html->body.find("request tracing"), std::string::npos);
  EXPECT_NE(html->body.find("retained"), std::string::npos);

  auto json = HttpGet(port, "/rpcz?format=json");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->status, 200);
  EXPECT_TRUE(JsonValidator(json->body).Valid()) << json->body;
  EXPECT_NE(json->body.find("\"slowest_k\": "), std::string::npos);
  EXPECT_NE(json->body.find("\"retained\": ["), std::string::npos);

  // An unretained id answers 404, not an empty 200.
  auto unknown = HttpGet(port, "/rpcz?trace_id=00000000deadbeef");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404);
  EXPECT_NE(unknown->body.find("not retained"), std::string::npos);
}

TEST_F(ObsServerTest, ProcessStartTimeGaugeIsScrapable) {
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();
  auto prom = HttpGet(port, "/metrics");
  ASSERT_TRUE(prom.ok());
  ASSERT_EQ(prom->status, 200);
  EXPECT_NE(prom->body.find("emba_process_start_time_seconds"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Server lifecycle

TEST_F(ObsServerTest, PortInUseFailsCleanly) {
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();
  http::HttpServer second([](const http::HttpRequest&) {
    return http::HttpResponse{};
  });
  Status status = second.Start(port);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.ToString().find("bind"), std::string::npos);
  EXPECT_FALSE(second.Running());
}

TEST_F(ObsServerTest, ServerOffMeansNoListenerThread) {
  ASSERT_FALSE(ObservabilityServerRunning());
  EXPECT_EQ(ObservabilityServerPort(), 0);
  const int64_t threads_before = metrics::GetProcessStats().threads;
  ASSERT_GT(threads_before, 0);

  // The listener thread exists exactly while the server runs.
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  EXPECT_TRUE(ObservabilityServerRunning());
  EXPECT_EQ(metrics::GetProcessStats().threads, threads_before + 1);
  StopObservabilityServer();
  EXPECT_FALSE(ObservabilityServerRunning());
  EXPECT_EQ(metrics::GetProcessStats().threads, threads_before);
}

TEST_F(ObsServerTest, DoubleStartRejected) {
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  Status again = StartObservabilityServer(0);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Profiler

TEST_F(ObsServerTest, ProfilerAttributesSamplesToSpinFunction) {
  std::atomic<bool> stop{false};
  std::thread spinner([&stop] { ObsTestProfilerSpin(&stop); });
  auto profile = prof::CollectProfile(0.5, prof::ProfileClock::kCpu,
                                      /*hz=*/250);
  stop.store(true);
  spinner.join();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_FALSE(profile->empty());
  // Collapsed-stack lines end in a count; the spinner must show up.
  EXPECT_NE(profile->find("ObsTestProfilerSpin"), std::string::npos)
      << "profile was:\n"
      << *profile;
}

TEST_F(ObsServerTest, ProfilerRejectsBadDurations) {
  EXPECT_FALSE(prof::CollectProfile(0.0).ok());
  EXPECT_FALSE(prof::CollectProfile(-1.0).ok());
  EXPECT_FALSE(prof::CollectProfile(prof::kMaxProfileSeconds + 1.0).ok());
}

TEST_F(ObsServerTest, ProfilezEndpointServesCollapsedStacks) {
  std::atomic<bool> stop{false};
  std::thread spinner([&stop] { ObsTestProfilerSpin(&stop); });
  ASSERT_TRUE(StartObservabilityServer(0).ok());
  const int port = ObservabilityServerPort();

  auto profile = HttpGet(port, "/profilez?seconds=0.4&clock=cpu");
  stop.store(true);
  spinner.join();
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->status, 200);
  EXPECT_FALSE(profile->body.empty());

  auto bad_clock = HttpGet(port, "/profilez?seconds=0.1&clock=nope");
  ASSERT_TRUE(bad_clock.ok());
  EXPECT_EQ(bad_clock->status, 400);
  auto bad_seconds = HttpGet(port, "/profilez?seconds=banana");
  ASSERT_TRUE(bad_seconds.ok());
  EXPECT_EQ(bad_seconds->status, 400);
}

// ---------------------------------------------------------------------------
// Periodic flush

TEST_F(ObsServerTest, PeriodicFlushRewritesMetricsFile) {
  const std::string path = "/tmp/emba_obs_periodic_metrics.json";
  std::filesystem::remove(path);
  metrics::Counter& marker = metrics::GetCounter("obs_test.flush_marker");

  ASSERT_TRUE(StartPeriodicMetricsFlush(0.05, path).ok());
  EXPECT_TRUE(PeriodicMetricsFlushRunning());

  auto wait_for_content = [&path](const std::string& needle) {
    for (int i = 0; i < 100; ++i) {
      std::ifstream in(path);
      std::stringstream buf;
      buf << in.rdbuf();
      if (buf.str().find(needle) != std::string::npos) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  };
  ASSERT_TRUE(wait_for_content("obs_test.flush_marker"))
      << "periodic flush never wrote " << path;
  // The file is *re*-written: a later bump must show up without any exit.
  marker.Increment(12345);
  EXPECT_TRUE(wait_for_content("12345"));

  StopPeriodicMetricsFlush();
  EXPECT_FALSE(PeriodicMetricsFlushRunning());
  std::filesystem::remove(path);
}

TEST_F(ObsServerTest, PeriodicFlushRejectsBadConfig) {
  EXPECT_FALSE(StartPeriodicMetricsFlush(0.0, "/tmp/x.json").ok());
  EXPECT_FALSE(StartPeriodicMetricsFlush(-2.0, "/tmp/x.json").ok());
  metrics::SetMetricsOutputPath("");
  Status no_path = StartPeriodicMetricsFlush(1.0);
  EXPECT_FALSE(no_path.ok());
  EXPECT_EQ(no_path.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Rich span args in the Chrome-trace export

TEST_F(ObsServerTest, WriteJsonEmitsTypedSpanArgs) {
  trace::Start();
  {
    EMBA_TRACE_SPAN_ARGS("obs_test/rich", {"epoch", 3},
                         {"threshold", 0.5},
                         {"dataset", trace::InternString(std::string("wdc"))});
  }
  { EMBA_TRACE_SPAN_ARG("obs_test/legacy", "step", 9); }
  trace::Stop();
  const std::string path = "/tmp/emba_obs_span_args_trace.json";
  std::filesystem::remove(path);
  ASSERT_TRUE(trace::WriteJson(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_TRUE(JsonValidator(json).Valid());
  EXPECT_NE(json.find("\"epoch\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"threshold\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"dataset\": \"wdc\""), std::string::npos);
  EXPECT_NE(json.find("\"step\": 9"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace emba
