// Unit tests for src/util: Status/Result, Rng, strings, CSV, logging,
// bench-scale knobs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "util/bench_scale.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace emba {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Invalid("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::Invalid("").code(),       Status::OutOfRange("").code(),
      Status::NotFound("").code(),      Status::AlreadyExists("").code(),
      Status::IOError("").code(),       Status::FailedPrecondition("").code(),
      Status::Internal("").code(),      Status::NotImplemented("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x"), Status::Invalid("x"));
  EXPECT_FALSE(Status::Invalid("x") == Status::Invalid("y"));
  EXPECT_FALSE(Status::Invalid("x") == Status::NotFound("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

// ---------- Rng ----------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalHasSaneMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(21);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

// ---------- strings ----------

TEST(StringsTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitWhitespaceSkipsRuns) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripAsciiWhitespace("\t\n"), "");
}

TEST(StringsTest, CaseAndAffixHelpers) {
  EXPECT_EQ(AsciiToLower("AbC-3"), "abc-3");
  EXPECT_TRUE(StartsWith("wdc_computers", "wdc_"));
  EXPECT_FALSE(StartsWith("x", "xyz"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
}

TEST(StringsTest, DigitHelpers) {
  EXPECT_TRUE(IsAsciiDigits("0123"));
  EXPECT_FALSE(IsAsciiDigits(""));
  EXPECT_FALSE(IsAsciiDigits("12a"));
  EXPECT_TRUE(ContainsDigit("mz-75e1t0bw"));
  EXPECT_FALSE(ContainsDigit("sandisk"));
}

TEST(StringsTest, Formatting) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(FormatFixed(92.738, 2), "92.74");
}

// ---------- CSV ----------

TEST(CsvTest, ParsesSimpleRows) {
  auto table = ParseCsv("a,b\n1,2\n3,4\n", /*has_header=*/true);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "4");
}

TEST(CsvTest, HandlesQuotedFieldsWithCommasAndQuotes) {
  auto table =
      ParseCsv("\"a,b\",\"say \"\"hi\"\"\"\nplain,2\n", /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "a,b");
  EXPECT_EQ(table->rows[0][1], "say \"hi\"");
}

TEST(CsvTest, HandlesEmbeddedNewline) {
  auto table = ParseCsv("\"line1\nline2\",x\n", /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][0], "line1\nline2");
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto table = ParseCsv("\"oops\n", /*has_header=*/false);
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, WriteParseRoundTrip) {
  CsvTable table;
  table.header = {"label", "text"};
  table.rows = {{"1", "has, comma"}, {"0", "has \"quote\""}};
  auto parsed = ParseCsv(WriteCsv(table), /*has_header=*/true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table;
  table.rows = {{"x", "y"}};
  const std::string path = "/tmp/emba_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  auto parsed = ReadCsvFile(path, /*has_header=*/false);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
  std::remove(path.c_str());
}

// ---------- bench scale ----------

TEST(BenchScaleTest, QuickDefaults) {
  unsetenv("EMBA_BENCH_SCALE");
  BenchScale scale = GetBenchScale();
  EXPECT_FALSE(scale.full);
  EXPECT_GE(scale.seeds, 2);
}

TEST(BenchScaleTest, FullMode) {
  setenv("EMBA_BENCH_SCALE", "full", 1);
  BenchScale scale = GetBenchScale();
  EXPECT_TRUE(scale.full);
  EXPECT_GT(scale.seeds, 2);
  unsetenv("EMBA_BENCH_SCALE");
}

}  // namespace
}  // namespace emba
