// Unit tests for the tensor engine: construction, views, kernels, and
// numeric invariants (softmax rows sum to one, matmul identities, ...).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"

namespace emba {
namespace {

constexpr float kTol = 1e-5f;

TEST(TensorTest, ZeroConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FromValuesAndAccess) {
  Tensor t = Tensor::FromValues(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  t.at(1, 1) = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
}

TEST(TensorTest, FromVectorIs1D) {
  Tensor t = Tensor::FromVector({1, 2, 3});
  EXPECT_EQ(t.ndim(), 1);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 1);
}

TEST(TensorTest, FillAndFull) {
  Tensor t = Tensor::Full({3}, 2.5f);
  EXPECT_EQ(t.SumAll(), 7.5f);
  t.Zero();
  EXPECT_EQ(t.SumAll(), 0.0f);
}

TEST(TensorTest, RandomNormalMoments) {
  Rng rng(5);
  Tensor t = Tensor::RandomNormal({100, 100}, &rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.MeanAll(), 1.0f, 0.1f);
}

TEST(TensorTest, RowAndSlices) {
  Tensor t = Tensor::FromValues(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor row = t.Row(1);
  EXPECT_EQ(row.ndim(), 1);
  EXPECT_EQ(row[0], 3.0f);
  EXPECT_EQ(row[1], 4.0f);

  Tensor rows = t.RowSlice(1, 3);
  EXPECT_EQ(rows.rows(), 2);
  EXPECT_EQ(rows.at(1, 1), 6.0f);

  Tensor cols = t.ColSlice(1, 2);
  EXPECT_EQ(cols.cols(), 1);
  EXPECT_EQ(cols.at(2, 0), 6.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_EQ(r.at(1, 0), 3.0f);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({4, 5, 6});
  a.AddInPlace(b);
  EXPECT_EQ(a[2], 9.0f);
  a.SubInPlace(b);
  EXPECT_EQ(a[0], 1.0f);
  a.MulScalarInPlace(3.0f);
  EXPECT_EQ(a[1], 6.0f);
  a.Axpy(2.0f, b);
  EXPECT_EQ(a[0], 11.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::FromVector({3, -1, 4, 1});
  EXPECT_EQ(t.SumAll(), 7.0f);
  EXPECT_EQ(t.MeanAll(), 1.75f);
  EXPECT_EQ(t.MaxAll(), 4.0f);
  EXPECT_EQ(t.ArgMaxAll(), 2);
  EXPECT_NEAR(t.Norm(), std::sqrt(27.0f), kTol);
}

TEST(TensorTest, AllFinite) {
  Tensor t = Tensor::FromVector({1, 2});
  EXPECT_TRUE(t.AllFinite());
  t[0] = std::nanf("");
  EXPECT_FALSE(t.AllFinite());
  t[0] = INFINITY;
  EXPECT_FALSE(t.AllFinite());
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromValues(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, MatMulTransposedVariantsAgree) {
  Rng rng(3);
  Tensor a = Tensor::RandomNormal({4, 5}, &rng);
  Tensor b = Tensor::RandomNormal({6, 5}, &rng);
  Tensor direct = MatMul(a, Transpose(b));
  Tensor fused = MatMulTransposedB(a, b);
  ASSERT_TRUE(direct.SameShape(fused));
  for (int64_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], fused[i], kTol);
  }

  Tensor c = Tensor::RandomNormal({5, 4}, &rng);
  Tensor d = Tensor::RandomNormal({5, 6}, &rng);
  Tensor direct2 = MatMul(Transpose(c), d);
  Tensor fused2 = MatMulTransposedA(c, d);
  for (int64_t i = 0; i < direct2.size(); ++i) {
    EXPECT_NEAR(direct2[i], fused2[i], kTol);
  }
}

TEST(TensorTest, TransposeInvolution) {
  Rng rng(4);
  Tensor a = Tensor::RandomNormal({3, 7}, &rng);
  Tensor tt = Transpose(Transpose(a));
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], tt[i]);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({4, 5, 6});
  EXPECT_EQ(Add(a, b)[1], 7.0f);
  EXPECT_EQ(Sub(b, a)[2], 3.0f);
  EXPECT_EQ(Mul(a, b)[0], 4.0f);
  EXPECT_EQ(Scale(a, -2.0f)[2], -6.0f);
}

TEST(TensorTest, AddRowBroadcast) {
  Tensor a = Tensor::FromValues(2, 2, {1, 2, 3, 4});
  Tensor bias = Tensor::FromVector({10, 20});
  Tensor out = AddRowBroadcast(a, bias);
  EXPECT_EQ(out.at(0, 0), 11.0f);
  EXPECT_EQ(out.at(1, 1), 24.0f);
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  Rng rng(6);
  Tensor a = Tensor::RandomNormal({5, 9}, &rng, 0.0f, 3.0f);
  Tensor s = SoftmaxRows(a);
  for (int64_t r = 0; r < s.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < s.cols(); ++c) {
      EXPECT_GT(s.at(r, c), 0.0f);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(TensorTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor a = Tensor::FromVector({1000.0f, 1000.0f, -1000.0f});
  Tensor s = SoftmaxRows(a);
  EXPECT_TRUE(s.AllFinite());
  EXPECT_NEAR(s[0], 0.5f, kTol);
  EXPECT_NEAR(s[2], 0.0f, kTol);
}

TEST(TensorTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(8);
  Tensor a = Tensor::RandomNormal({3, 4}, &rng);
  Tensor ls = LogSoftmaxRows(a);
  Tensor s = SoftmaxRows(a);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(ls[i], std::log(s[i]), 1e-4);
  }
}

TEST(TensorTest, ActivationSpotChecks) {
  Tensor x = Tensor::FromVector({-1.0f, 0.0f, 2.0f});
  Tensor relu = Relu(x);
  EXPECT_EQ(relu[0], 0.0f);
  EXPECT_EQ(relu[2], 2.0f);
  Tensor sig = Sigmoid(x);
  EXPECT_NEAR(sig[1], 0.5f, kTol);
  Tensor th = Tanh(x);
  EXPECT_NEAR(th[1], 0.0f, kTol);
  Tensor gelu = Gelu(x);
  EXPECT_NEAR(gelu[1], 0.0f, kTol);
  EXPECT_NEAR(gelu[2], 1.9546f, 1e-3);  // gelu(2) ~ 1.9546
}

TEST(TensorTest, RowColumnReductions) {
  Tensor a = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor mean_rows = MeanRows(a);
  EXPECT_NEAR(mean_rows[0], 2.5f, kTol);
  EXPECT_NEAR(mean_rows[2], 4.5f, kTol);
  Tensor sum_rows = SumRows(a);
  EXPECT_EQ(sum_rows[1], 7.0f);
  Tensor mean_cols = MeanCols(a);
  EXPECT_NEAR(mean_cols[0], 2.0f, kTol);
  EXPECT_NEAR(mean_cols[1], 5.0f, kTol);
}

TEST(TensorTest, ConcatAndStack) {
  Tensor a = Tensor::FromVector({1, 2});
  Tensor b = Tensor::FromVector({3});
  Tensor cat = Concat1D({a, b});
  EXPECT_EQ(cat.size(), 3);
  EXPECT_EQ(cat[2], 3.0f);

  Tensor stacked = StackRows({a, Tensor::FromVector({9, 10})});
  EXPECT_EQ(stacked.rows(), 2);
  EXPECT_EQ(stacked.at(1, 1), 10.0f);

  Tensor m1 = Tensor::FromValues(2, 1, {1, 2});
  Tensor m2 = Tensor::FromValues(2, 2, {3, 4, 5, 6});
  Tensor cc = ConcatCols({m1, m2});
  EXPECT_EQ(cc.cols(), 3);
  EXPECT_EQ(cc.at(1, 0), 2.0f);
  EXPECT_EQ(cc.at(1, 2), 6.0f);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Zeros({100});
  std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[100]"), std::string::npos);
}

}  // namespace
}  // namespace emba
