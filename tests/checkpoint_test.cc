// Tests for the crash-safe checkpoint subsystem: CRC32, atomic file
// publication, the v2 artifact format (round-trip, v1 compatibility,
// checksum and fuzzed-header rejection, unmatched-entry policy) and
// trainer checkpoint/resume — including the kill-and-resume bit-identical
// trajectory guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/serialize.h"

namespace emba {
namespace {

std::string TempPath(const std::string& name) { return "/tmp/emba_" + name; }

void WriteRaw(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadRaw(const std::string& path) {
  std::string out;
  EMBA_CHECK(ReadFileToString(path, &out).ok());
  return out;
}

// ---------- CRC32 ----------

TEST(Crc32Test, KnownAnswer) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char* msg = "123456789";
  EXPECT_EQ(Crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = kCrc32Init;
  for (size_t i = 0; i < data.size(); i += 7) {
    crc = Crc32Update(crc, data.data() + i, std::min<size_t>(7, data.size() - i));
  }
  EXPECT_EQ(crc, Crc32(data.data(), data.size()));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\x5a');
  const uint32_t clean = Crc32(data.data(), data.size());
  data[100] ^= 0x08;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

// ---------- Atomic file publication ----------

TEST(AtomicFileTest, WritePublishesAndCleansTemp) {
  const std::string path = TempPath("atomic_basic.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "hello").ok());
  EXPECT_EQ(ReadRaw(path), "hello");
  EXPECT_FALSE(FileExists(AtomicTempPath(path)));
  std::remove(path.c_str());
}

TEST(AtomicFileTest, FailedWriteLeavesPreviousFileIntact) {
  // A write into a nonexistent directory fails before anything is
  // published; an existing file at a sibling path is untouched by design,
  // but more importantly the failure is a clean Status, not a partial file.
  const std::string bad = "/tmp/emba_no_such_dir_xyz/f.bin";
  Status status = WriteFileAtomic(bad, "data");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_FALSE(FileExists(bad));
}

TEST(AtomicFileTest, StaleTempFromCrashedWriterIsHarmless) {
  // Simulate a writer that crashed mid-write: its temp file is on disk,
  // the real file still holds the previous (good) contents. The good file
  // must read back unchanged, and the next save must succeed.
  const std::string path = TempPath("atomic_stale.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "good v1").ok());
  WriteRaw(AtomicTempPath(path), "torn garbage from a dead writer");
  EXPECT_EQ(ReadRaw(path), "good v1");  // crash never clobbered it
  ASSERT_TRUE(WriteFileAtomic(path, "good v2").ok());
  EXPECT_EQ(ReadRaw(path), "good v2");
  EXPECT_FALSE(FileExists(AtomicTempPath(path)));
  std::remove(path.c_str());
}

// ---------- v2 format round-trip ----------

TEST(CheckpointFormatTest, TensorAndByteSectionsRoundTrip) {
  nn::CheckpointWriter writer;
  Tensor a = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({-1.5f, 0.0f, 7.25f});
  writer.AddTensor("layer.weight", a);
  writer.AddTensor("layer.bias", b);
  writer.AddBytes("opaque", std::string("\x00\x01\xff binary", 10));

  auto reader = nn::CheckpointReader::Parse(writer.Serialize());
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->version(), 2u);
  ASSERT_NE(reader->FindTensor("layer.weight"), nullptr);
  const Tensor& ra = *reader->FindTensor("layer.weight");
  ASSERT_TRUE(ra.shape() == a.shape());
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(ra[i], a[i]);
  ASSERT_NE(reader->FindBytes("opaque"), nullptr);
  EXPECT_EQ(*reader->FindBytes("opaque"), std::string("\x00\x01\xff binary", 10));
  EXPECT_EQ(reader->names().size(), 3u);
  EXPECT_EQ(reader->TensorNames().size(), 2u);
  EXPECT_EQ(reader->FindTensor("missing"), nullptr);
  EXPECT_EQ(reader->FindBytes("layer.weight"), nullptr);  // wrong kind
}

TEST(CheckpointFormatTest, SerializationIsDeterministic) {
  Rng rng(5);
  nn::Linear a(6, 4, &rng);
  const std::string p1 = TempPath("det1.ckpt"), p2 = TempPath("det2.ckpt");
  ASSERT_TRUE(a.SaveParameters(p1).ok());
  ASSERT_TRUE(a.SaveParameters(p2).ok());
  EXPECT_EQ(ReadRaw(p1), ReadRaw(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(ModuleCheckpointTest, SaveLoadRoundTripIsByteIdentical) {
  Rng rng(2);
  nn::Linear a(5, 4, &rng), b(5, 4, &rng);
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  auto pa = a.Parameters(), pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    const Tensor& ta = pa[i].value();
    const Tensor& tb = pb[i].value();
    ASSERT_TRUE(ta.shape() == tb.shape());
    for (int64_t j = 0; j < ta.size(); ++j) EXPECT_EQ(ta[j], tb[j]);
  }
  // Re-saving the loaded module reproduces the file bit for bit.
  const std::string path2 = TempPath("roundtrip2.ckpt");
  ASSERT_TRUE(b.SaveParameters(path2).ok());
  EXPECT_EQ(ReadRaw(path), ReadRaw(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

// ---------- v1 compatibility ----------

// Writes `module`'s parameters in the legacy v1 layout (u32 magic, u64
// count, then name/ndim/dims/f32 entries — no version, no checksum).
std::string SerializeV1(const nn::Module& module) {
  ByteWriter w;
  auto named = module.NamedParameters();
  w.PutU32(nn::kCheckpointMagicV1);
  w.PutU64(named.size());
  for (const auto& [name, var] : named) {
    w.PutString(name);
    const Tensor& t = var.value();
    w.PutU32(static_cast<uint32_t>(t.ndim()));
    for (int64_t d : t.shape()) w.PutI64(d);
    w.PutBytes(t.data(), static_cast<size_t>(t.size()) * sizeof(float));
  }
  return w.Release();
}

TEST(ModuleCheckpointTest, ReadsLegacyV1Files) {
  Rng rng(3);
  nn::Linear a(4, 3, &rng), b(4, 3, &rng);
  const std::string path = TempPath("legacy_v1.bin");
  WriteRaw(path, SerializeV1(a));
  ASSERT_TRUE(b.LoadParameters(path).ok());
  auto pa = a.Parameters(), pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].value().size(); ++j) {
      EXPECT_EQ(pa[i].value()[j], pb[i].value()[j]);
    }
  }
  auto reader = nn::CheckpointReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->version(), 1u);
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, RejectsFuzzedV1Headers) {
  // Regression: the old loader constructed Tensor(shape) straight from
  // unvalidated dims on disk — negative or huge dims were UB/OOM before the
  // truncation check. Both formats must reject them with a clean Status.
  Rng rng(3);
  nn::Linear model(4, 3, &rng);
  struct Case {
    const char* label;
    int64_t dim0, dim1;
  };
  for (const Case& c : {Case{"negative dim", -4, 3},
                        Case{"zero dim", 0, 3},
                        Case{"huge dims (overflow)", int64_t{1} << 40,
                             int64_t{1} << 40}}) {
    ByteWriter w;
    w.PutU32(nn::kCheckpointMagicV1);
    w.PutU64(1);
    w.PutString("weight");
    w.PutU32(2);
    w.PutI64(c.dim0);
    w.PutI64(c.dim1);
    const std::string path = TempPath("fuzz_v1.bin");
    WriteRaw(path, w.buffer());
    Status status = model.LoadParameters(path);
    EXPECT_FALSE(status.ok()) << c.label;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << c.label;
    std::remove(path.c_str());
  }
}

// ---------- strict v2 validation ----------

std::string ValidImage() {
  nn::CheckpointWriter writer;
  writer.AddTensor("w", Tensor::FromValues(2, 2, {1, 2, 3, 4}));
  writer.AddBytes("s", "state");
  return writer.Serialize();
}

TEST(CheckpointFormatTest, ChecksumRejectsEverySingleBitFlip) {
  const std::string clean = ValidImage();
  ASSERT_TRUE(nn::CheckpointReader::Parse(clean).ok());
  // Any single flipped bit anywhere in the file — header or payload — must
  // be detected: header fields are validated, payload is checksummed.
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = clean;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto reader = nn::CheckpointReader::Parse(corrupt);
      EXPECT_FALSE(reader.ok()) << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(CheckpointFormatTest, ChecksumRejectsBitFlipThroughFile) {
  Rng rng(4);
  nn::Linear a(5, 4, &rng), b(5, 4, &rng);
  const std::string path = TempPath("bitflip.ckpt");
  ASSERT_TRUE(a.SaveParameters(path).ok());
  std::string image = ReadRaw(path);
  image[image.size() / 2] ^= 0x10;  // flip one payload bit
  WriteRaw(path, image);
  Status status = b.LoadParameters(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, RejectsMalformedV2Images) {
  const std::string valid = ValidImage();

  // Truncation at every prefix length: clean error, never a crash.
  for (size_t len = 0; len < valid.size(); ++len) {
    auto reader = nn::CheckpointReader::Parse(valid.substr(0, len));
    EXPECT_FALSE(reader.ok()) << "truncated to " << len;
  }

  struct Case {
    const char* label;
    std::string image;
  };
  std::vector<Case> cases;

  {  // wrong version
    ByteWriter w;
    w.PutU32(nn::kCheckpointMagicV2);
    w.PutU32(99);
    w.PutU32(nn::kCheckpointEndianTag);
    w.PutU32(0);
    w.PutU64(8);
    w.PutU32(Crc32("\0\0\0\0\0\0\0\0", 8));
    w.PutBytes("\0\0\0\0\0\0\0\0", 8);
    cases.push_back({"unsupported version", w.Release()});
  }
  {  // foreign endianness tag
    ByteWriter w;
    w.PutU32(nn::kCheckpointMagicV2);
    w.PutU32(nn::kCheckpointVersion);
    w.PutU32(0x04030201);
    w.PutU32(0);
    w.PutU64(8);
    w.PutU32(Crc32("\0\0\0\0\0\0\0\0", 8));
    w.PutBytes("\0\0\0\0\0\0\0\0", 8);
    cases.push_back({"endianness tag", w.Release()});
  }
  {  // payload size field lies about the file size
    std::string lying = valid;
    lying.push_back('\x00');
    cases.push_back({"payload size mismatch", lying});
  }
  {  // unknown section kind
    ByteWriter payload;
    payload.PutU64(1);
    payload.PutString("x");
    payload.PutU8(9);
    ByteWriter w;
    w.PutU32(nn::kCheckpointMagicV2);
    w.PutU32(nn::kCheckpointVersion);
    w.PutU32(nn::kCheckpointEndianTag);
    w.PutU32(0);
    w.PutU64(payload.buffer().size());
    w.PutU32(Crc32(payload.buffer().data(), payload.buffer().size()));
    w.PutBytes(payload.buffer().data(), payload.buffer().size());
    cases.push_back({"unknown kind", w.Release()});
  }
  {  // duplicate section names
    ByteWriter payload;
    payload.PutU64(2);
    for (int i = 0; i < 2; ++i) {
      payload.PutString("dup");
      payload.PutU8(1);
      payload.PutString("b");
    }
    ByteWriter w;
    w.PutU32(nn::kCheckpointMagicV2);
    w.PutU32(nn::kCheckpointVersion);
    w.PutU32(nn::kCheckpointEndianTag);
    w.PutU32(0);
    w.PutU64(payload.buffer().size());
    w.PutU32(Crc32(payload.buffer().data(), payload.buffer().size()));
    w.PutBytes(payload.buffer().data(), payload.buffer().size());
    cases.push_back({"duplicate names", w.Release()});
  }
  {  // tensor with negative dim inside a checksummed v2 payload
    ByteWriter payload;
    payload.PutU64(1);
    payload.PutString("t");
    payload.PutU8(0);
    payload.PutU32(2);
    payload.PutI64(-1);
    payload.PutI64(4);
    ByteWriter w;
    w.PutU32(nn::kCheckpointMagicV2);
    w.PutU32(nn::kCheckpointVersion);
    w.PutU32(nn::kCheckpointEndianTag);
    w.PutU32(0);
    w.PutU64(payload.buffer().size());
    w.PutU32(Crc32(payload.buffer().data(), payload.buffer().size()));
    w.PutBytes(payload.buffer().data(), payload.buffer().size());
    cases.push_back({"negative dim", w.Release()});
  }
  {  // entry count far beyond what the file could hold
    ByteWriter payload;
    payload.PutU64(uint64_t{1} << 60);
    ByteWriter w;
    w.PutU32(nn::kCheckpointMagicV2);
    w.PutU32(nn::kCheckpointVersion);
    w.PutU32(nn::kCheckpointEndianTag);
    w.PutU32(0);
    w.PutU64(payload.buffer().size());
    w.PutU32(Crc32(payload.buffer().data(), payload.buffer().size()));
    w.PutBytes(payload.buffer().data(), payload.buffer().size());
    cases.push_back({"entry count overflow", w.Release()});
  }
  {  // bad magic
    std::string bad = valid;
    bad[0] = 'X';
    cases.push_back({"bad magic", bad});
  }

  for (const auto& c : cases) {
    auto reader = nn::CheckpointReader::Parse(c.image, c.label);
    EXPECT_FALSE(reader.ok()) << c.label;
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument) << c.label;
  }
}

// ---------- unmatched-entry policy ----------

TEST(ModuleCheckpointTest, UnmatchedFileEntryIsAnError) {
  // A checkpoint written for a different architecture (e.g. a renamed
  // layer) used to "load" successfully with the stray weights silently
  // dropped, leaving the renamed layer at its random init.
  Rng rng(6);
  nn::Linear model(3, 2, &rng);
  nn::CheckpointWriter writer;
  for (const auto& [name, var] : model.NamedParameters()) {
    writer.AddTensor(name, var.value());
  }
  writer.AddTensor("ghost.weight", Tensor::FromVector({1.0f, 2.0f}));
  const std::string path = TempPath("unmatched.ckpt");
  ASSERT_TRUE(writer.Write(path).ok());

  Status strict = model.LoadParameters(path);
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.message().find("ghost.weight"), std::string::npos);

  EXPECT_TRUE(model.LoadParameters(path, /*allow_unmatched=*/true).ok());
  std::remove(path.c_str());
}

// ---------- Rng state ----------

TEST(RngStateTest, SaveLoadResumesExactStream) {
  Rng a(1234);
  for (int i = 0; i < 37; ++i) a.NextU64();
  a.Normal();  // populate the Box–Muller cache
  const std::string state = a.SaveState();
  std::vector<uint64_t> expected;
  Rng reference = a;
  for (int i = 0; i < 16; ++i) expected.push_back(reference.NextU64());
  const double expected_normal = reference.Normal();

  Rng b(999);  // different seed, then overwritten by the saved state
  ASSERT_TRUE(b.LoadState(state).ok());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b.NextU64(), expected[i]);
  EXPECT_EQ(b.Normal(), expected_normal);
}

TEST(RngStateTest, RejectsMalformedBlobs) {
  Rng rng(1);
  EXPECT_FALSE(rng.LoadState("").ok());
  EXPECT_FALSE(rng.LoadState("short").ok());
  std::string zeros(41, '\0');
  EXPECT_FALSE(rng.LoadState(zeros).ok());  // all-zero xoshiro fixed point
  std::string trailing = rng.SaveState() + "x";
  EXPECT_FALSE(rng.LoadState(trailing).ok());
}

// ---------- trainer kill-and-resume ----------

core::EncodedDataset ResumeDataset() {
  data::GeneratorOptions options;
  options.seed = 33;
  options.size_factor = 0.3;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
  core::EncodeOptions encode_options;
  encode_options.max_len = 32;
  encode_options.wordpiece_vocab = 600;
  return core::EncodeDataset(dataset, encode_options);
}

core::ModelBudget TinyBudget() {
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 32;
  return budget;
}

core::TrainConfig ResumeConfig(Rng* dropout_rng) {
  core::TrainConfig config;
  config.max_epochs = 4;
  config.min_epochs = 1;
  config.patience = 4;
  config.seed = 77;
  config.dropout_rng = dropout_rng;
  return config;
}

TEST(TrainerResumeTest, KillAndResumeIsBitIdenticalToUninterrupted) {
  core::EncodedDataset dataset = ResumeDataset();
  const std::string ckpt_a = TempPath("resume_a.ckpt");
  const std::string ckpt_b = TempPath("resume_b.ckpt");
  const std::string weights_a = TempPath("resume_a.bin");
  const std::string weights_c = TempPath("resume_c.bin");
  std::remove(ckpt_a.c_str());
  std::remove(ckpt_b.c_str());

  // Run A: uninterrupted, checkpointing every epoch.
  {
    Rng rng(11);
    auto model = core::CreateModel("emba", TinyBudget(),
                                   dataset.wordpiece->vocab().size(),
                                   dataset.num_id_classes, &rng);
    ASSERT_TRUE(model.ok());
    core::TrainConfig config = ResumeConfig(&rng);
    config.checkpoint_path = ckpt_a;
    core::Trainer trainer(model->get(), &dataset, config);
    core::TrainResult result;
    ASSERT_TRUE(trainer.Run(&result).ok());
    EXPECT_EQ(result.epochs_ran, 4);
    ASSERT_TRUE((*model)->SaveParameters(weights_a).ok());
  }

  // Run B: identical setup, "killed" after 2 epochs (no best-restore, no
  // final eval — exactly what a SIGKILL at the epoch boundary leaves).
  {
    Rng rng(11);
    auto model = core::CreateModel("emba", TinyBudget(),
                                   dataset.wordpiece->vocab().size(),
                                   dataset.num_id_classes, &rng);
    ASSERT_TRUE(model.ok());
    core::TrainConfig config = ResumeConfig(&rng);
    config.checkpoint_path = ckpt_b;
    config.interrupt_after_epochs = 2;
    core::Trainer trainer(model->get(), &dataset, config);
    core::TrainResult partial;
    ASSERT_TRUE(trainer.Run(&partial).ok());
    EXPECT_EQ(partial.epochs_ran, 2);
  }

  // Run C: a fresh process resumes run B's checkpoint and finishes.
  {
    Rng rng(11);
    auto model = core::CreateModel("emba", TinyBudget(),
                                   dataset.wordpiece->vocab().size(),
                                   dataset.num_id_classes, &rng);
    ASSERT_TRUE(model.ok());
    core::TrainConfig config = ResumeConfig(&rng);
    config.checkpoint_path = ckpt_b;
    config.resume = true;
    core::Trainer trainer(model->get(), &dataset, config);
    core::TrainResult result;
    ASSERT_TRUE(trainer.Run(&result).ok());
    EXPECT_EQ(result.epochs_ran, 4);
    ASSERT_TRUE((*model)->SaveParameters(weights_c).ok());
  }

  // The resumed run's final weight file is byte-identical to the
  // uninterrupted run's.
  EXPECT_EQ(ReadRaw(weights_a), ReadRaw(weights_c));

  std::remove(ckpt_a.c_str());
  std::remove(ckpt_b.c_str());
  std::remove(weights_a.c_str());
  std::remove(weights_c.c_str());
}

TEST(TrainerResumeTest, CorruptCheckpointYieldsCleanStatus) {
  core::EncodedDataset dataset = ResumeDataset();
  const std::string ckpt = TempPath("resume_corrupt.ckpt");
  std::remove(ckpt.c_str());

  Rng rng(12);
  auto model = core::CreateModel("emba", TinyBudget(),
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config = ResumeConfig(&rng);
  config.checkpoint_path = ckpt;
  config.interrupt_after_epochs = 1;
  core::Trainer trainer(model->get(), &dataset, config);
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());
  ASSERT_TRUE(FileExists(ckpt));

  // Flip one payload bit: the resume must fail with a checksum error, not
  // misbehave.
  std::string image = ReadRaw(ckpt);
  image[image.size() - 3] ^= 0x01;
  WriteRaw(ckpt, image);
  config.resume = true;
  core::Trainer resumed(model->get(), &dataset, config);
  Status status = resumed.Run(&result);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
  std::remove(ckpt.c_str());
}

TEST(TrainerResumeTest, StaleTempNeverClobbersCheckpoint) {
  // A crash *during* a checkpoint save leaves a temp file next to the real
  // checkpoint. The checkpoint must still open, and resuming must work.
  core::EncodedDataset dataset = ResumeDataset();
  const std::string ckpt = TempPath("resume_stale.ckpt");
  std::remove(ckpt.c_str());

  Rng rng(13);
  auto model = core::CreateModel("emba", TinyBudget(),
                                 dataset.wordpiece->vocab().size(),
                                 dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config = ResumeConfig(&rng);
  config.max_epochs = 2;
  config.checkpoint_path = ckpt;
  config.interrupt_after_epochs = 1;
  core::Trainer trainer(model->get(), &dataset, config);
  core::TrainResult result;
  ASSERT_TRUE(trainer.Run(&result).ok());

  WriteRaw(AtomicTempPath(ckpt), "half-written checkpoint from a crash");
  ASSERT_TRUE(nn::CheckpointReader::Open(ckpt).ok());

  config.resume = true;
  core::Trainer resumed(model->get(), &dataset, config);
  ASSERT_TRUE(resumed.Run(&result).ok());
  EXPECT_EQ(result.epochs_ran, 2);
  std::remove(ckpt.c_str());
  std::remove(AtomicTempPath(ckpt).c_str());
}

}  // namespace
}  // namespace emba
