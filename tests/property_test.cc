// Cross-module property tests: AOA invariants over randomized shapes, the
// paper's Section-4.4 padding-skew observation, model determinism and
// attention-capture contracts, and trainer loss-weighting modes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aoa.h"
#include "core/registry.h"
#include "core/trainer.h"
#include "core/transformer_em.h"
#include "data/generator.h"

namespace emba {
namespace {

// ---------- AOA properties across randomized shapes ----------

struct AoaShape {
  int64_t m, n, h;
  uint64_t seed;
};

class AoaPropertyTest : public ::testing::TestWithParam<AoaShape> {};

TEST_P(AoaPropertyTest, GammaAndBetaBarAreDistributions) {
  const AoaShape& shape = GetParam();
  Rng rng(shape.seed);
  ag::Var e1(Tensor::RandomNormal({shape.m, shape.h}, &rng));
  ag::Var e2(Tensor::RandomNormal({shape.n, shape.h}, &rng));
  core::AoaOutput out = core::AttentionOverAttention(e1, e2);
  ASSERT_EQ(out.gamma.size(), shape.m);
  ASSERT_EQ(out.beta_bar.size(), shape.n);
  ASSERT_EQ(out.pooled.size(), shape.h);
  double gamma_sum = 0.0, beta_sum = 0.0;
  for (int64_t i = 0; i < shape.m; ++i) {
    EXPECT_GE(out.gamma.value()[i], 0.0f);
    gamma_sum += out.gamma.value()[i];
  }
  for (int64_t i = 0; i < shape.n; ++i) {
    EXPECT_GE(out.beta_bar.value()[i], 0.0f);
    beta_sum += out.beta_bar.value()[i];
  }
  EXPECT_NEAR(gamma_sum, 1.0, 1e-3);
  EXPECT_NEAR(beta_sum, 1.0, 1e-3);
  EXPECT_TRUE(out.pooled.value().AllFinite());
}

TEST_P(AoaPropertyTest, PooledBoundedByE1Extremes) {
  // x = E1^T gamma with gamma a distribution => each coordinate of x lies
  // within [min, max] of that column of E1.
  const AoaShape& shape = GetParam();
  Rng rng(shape.seed ^ 0x5EEDull);
  ag::Var e1(Tensor::RandomNormal({shape.m, shape.h}, &rng));
  ag::Var e2(Tensor::RandomNormal({shape.n, shape.h}, &rng));
  core::AoaOutput out = core::AttentionOverAttention(e1, e2);
  for (int64_t c = 0; c < shape.h; ++c) {
    float lo = e1.value().at(0, c), hi = lo;
    for (int64_t r = 1; r < shape.m; ++r) {
      lo = std::min(lo, e1.value().at(r, c));
      hi = std::max(hi, e1.value().at(r, c));
    }
    EXPECT_GE(out.pooled.value()[c], lo - 1e-4f);
    EXPECT_LE(out.pooled.value()[c], hi + 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AoaPropertyTest,
    ::testing::Values(AoaShape{1, 1, 4, 1}, AoaShape{2, 9, 8, 2},
                      AoaShape{16, 3, 12, 3}, AoaShape{7, 7, 16, 4},
                      AoaShape{31, 17, 24, 5}));

TEST(AoaPaddingTest, IntermediateZeroPaddingSkewsThePooling) {
  // Section 4.4: the paper found that zero-padding the entity blocks (to
  // enable batched AOA) skews the representation and costs F1. The module
  // property behind that finding: appending all-zero rows to E1 changes
  // the AOA output, because softmax assigns them non-zero attention.
  Rng rng(11);
  ag::Var e1(Tensor::RandomNormal({4, 8}, &rng));
  ag::Var e2(Tensor::RandomNormal({5, 8}, &rng));
  core::AoaOutput clean = core::AttentionOverAttention(e1, e2);

  Tensor padded_values = Tensor::Zeros({6, 8});
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 8; ++c) {
      padded_values.at(r, c) = e1.value().at(r, c);
    }
  }
  core::AoaOutput padded =
      core::AttentionOverAttention(ag::Var(padded_values), e2);
  double diff = 0.0;
  for (int64_t c = 0; c < 8; ++c) {
    diff += std::fabs(clean.pooled.value()[c] - padded.pooled.value()[c]);
  }
  EXPECT_GT(diff, 1e-3);  // padding is NOT a no-op — matching the paper
  // and the padding rows soak up real attention mass:
  float pad_mass = padded.gamma.value()[4] + padded.gamma.value()[5];
  EXPECT_GT(pad_mass, 1e-4f);
}

// ---------- model-level contracts ----------

class ModelContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions options;
    options.seed = 91;
    options.size_factor = 0.4;
    auto raw = data::MakeWdc(data::WdcCategory::kCameras,
                             data::WdcSize::kSmall, options);
    core::EncodeOptions encode_options;
    encode_options.max_len = 32;
    encode_options.wordpiece_vocab = 500;
    dataset_ = core::EncodeDataset(raw, encode_options);
  }

  std::unique_ptr<core::EmModel> Make(const std::string& name,
                                      uint64_t seed = 5) {
    Rng rng(seed);
    core::ModelBudget budget;
    budget.dim = 16;
    budget.layers = 1;
    budget.heads = 2;
    budget.max_len = 32;
    auto model = core::CreateModel(name, budget,
                                   dataset_.wordpiece->vocab().size(),
                                   dataset_.num_id_classes, &rng);
    EMBA_CHECK(model.ok());
    return std::move(*model);
  }

  core::EncodedDataset dataset_;
};

TEST_F(ModelContractTest, EvalForwardIsDeterministic) {
  for (const char* name : {"emba", "jointbert", "ditto", "jointmatcher"}) {
    auto model = Make(name);
    model->SetTraining(false);
    ag::NoGradGuard guard;
    Tensor a = model->Forward(dataset_.train[0]).em_logits.value();
    Tensor b = model->Forward(dataset_.train[0]).em_logits.value();
    for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << name;
  }
}

TEST_F(ModelContractTest, SameSeedSameInit) {
  auto a = Make("emba", 9);
  auto b = Make("emba", 9);
  auto pa = a->Parameters();
  auto pb = b->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].size(), pb[i].size());
    for (int64_t j = 0; j < pa[i].size(); ++j) {
      EXPECT_EQ(pa[i].value()[j], pb[i].value()[j]);
    }
  }
}

TEST_F(ModelContractTest, AttentionCaptureLifecycle) {
  auto model = Make("emba");
  model->SetTraining(false);
  ag::NoGradGuard guard;
  // Nothing captured before opting in.
  model->Forward(dataset_.train[0]);
  EXPECT_FALSE(model->LastTokenAttention().has_value());
  model->CaptureTokenAttention(true);
  model->Forward(dataset_.train[0]);
  auto attention = model->LastTokenAttention();
  ASSERT_TRUE(attention.has_value());
  EXPECT_EQ(attention->size(),
            static_cast<int64_t>(dataset_.train[0].enc.token_ids.size()));
  EXPECT_TRUE(attention->AllFinite());
}

TEST_F(ModelContractTest, EmbaAttentionBoostsAlignedTokensAfterTraining) {
  auto model = Make("emba");
  core::TrainConfig config;
  config.max_epochs = 4;
  core::Trainer trainer(model.get(), &dataset_, config);
  trainer.Run();
  // Gradients must not leak into eval-time capture.
  model->SetTraining(false);
  model->CaptureTokenAttention(true);
  ag::NoGradGuard guard;
  model->Forward(dataset_.test[0]);
  ASSERT_TRUE(model->LastTokenAttention().has_value());
}

TEST_F(ModelContractTest, LiteralEq3ModeStillTrains) {
  auto model = Make("emba");
  core::TrainConfig config;
  config.max_epochs = 2;
  config.aux_loss_weight = 1.0f;  // the paper's literal unweighted Eq. 3
  core::Trainer trainer(model.get(), &dataset_, config);
  core::TrainResult result = trainer.Run();
  EXPECT_GE(result.test.em.f1, 0.0);
  EXPECT_GT(result.test.id1_accuracy, 0.0);  // aux tasks still learn
}

TEST_F(ModelContractTest, AuxWeightZeroDisablesAuxLearning) {
  auto model = Make("emba");
  core::TrainConfig config;
  config.max_epochs = 2;
  config.aux_loss_weight = 0.0f;
  core::Trainer trainer(model.get(), &dataset_, config);
  core::TrainResult result = trainer.Run();
  // ID heads stay near chance: below 25% on a >= 15-class problem.
  EXPECT_LT(result.test.id1_accuracy, 0.25);
}

// ---------- dataset cache / encode style interaction ----------

TEST_F(ModelContractTest, DittoModelDeclaresDittoStyle) {
  auto ditto = Make("ditto");
  EXPECT_EQ(ditto->input_style(), core::InputStyle::kDitto);
  auto emba = Make("emba");
  EXPECT_EQ(emba->input_style(), core::InputStyle::kPlain);
}

}  // namespace
}  // namespace emba
