// Tests for the explanation tooling: ridge solver correctness, LIME weight
// semantics on a model with a known decision rule, and the attention report.
#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "explain/attention_report.h"
#include "explain/lime.h"

namespace emba {
namespace explain {
namespace {

TEST(RidgeTest, RecoversExactLinearModel) {
  // y = 2 + 3*x1 - x2, no noise, lambda ~ 0.
  std::vector<std::vector<double>> x;
  std::vector<double> y, w;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    double x1 = rng.NextDouble(), x2 = rng.NextDouble();
    x.push_back({x1, x2});
    y.push_back(2.0 + 3.0 * x1 - x2);
    w.push_back(1.0);
  }
  auto beta = SolveRidge(x, y, w, 1e-9);
  ASSERT_EQ(beta.size(), 3u);
  EXPECT_NEAR(beta[0], 2.0, 1e-5);
  EXPECT_NEAR(beta[1], 3.0, 1e-5);
  EXPECT_NEAR(beta[2], -1.0, 1e-5);
}

TEST(RidgeTest, RegularizationShrinksWeights) {
  std::vector<std::vector<double>> x;
  std::vector<double> y, w;
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    double x1 = rng.NextDouble();
    x.push_back({x1});
    y.push_back(5.0 * x1);
    w.push_back(1.0);
  }
  auto loose = SolveRidge(x, y, w, 1e-9);
  auto tight = SolveRidge(x, y, w, 100.0);
  EXPECT_LT(std::abs(tight[1]), std::abs(loose[1]));
}

TEST(RidgeTest, SampleWeightsMatter) {
  // Two contradictory points; the heavily weighted one wins.
  std::vector<std::vector<double>> x = {{1.0}, {1.0}};
  std::vector<double> y = {1.0, 0.0};
  auto beta_a = SolveRidge(x, y, {100.0, 1.0}, 1e-6);
  auto beta_b = SolveRidge(x, y, {1.0, 100.0}, 1e-6);
  EXPECT_GT(beta_a[0] + beta_a[1], beta_b[0] + beta_b[1]);
}

class LimeOnTrainedModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions options;
    options.seed = 55;
    options.size_factor = 0.5;
    auto raw = data::MakeWdc(data::WdcCategory::kComputers,
                             data::WdcSize::kMedium, options);
    core::EncodeOptions encode_options;
    encode_options.max_len = 32;
    encode_options.wordpiece_vocab = 800;
    dataset_ = core::EncodeDataset(raw, encode_options);

    Rng rng(56);
    core::ModelBudget budget;
    budget.dim = 16;
    budget.layers = 1;
    budget.heads = 2;
    budget.max_len = 32;
    auto model = core::CreateModel("emba", budget,
                                   dataset_.wordpiece->vocab().size(),
                                   dataset_.num_id_classes, &rng);
    ASSERT_TRUE(model.ok());
    model_ = std::move(*model);
    core::TrainConfig config;
    config.max_epochs = 2;
    core::Trainer trainer(model_.get(), &dataset_, config);
    trainer.Run();
  }

  core::EncodedDataset dataset_;
  std::unique_ptr<core::EmModel> model_;
};

TEST_F(LimeOnTrainedModelTest, ExplanationCoversEveryWord) {
  data::LabeledPair pair = data::CaseStudyPair();
  LimeConfig config;
  config.num_samples = 60;
  LimeExplainer explainer(model_.get(), &dataset_, config);
  LimeExplanation explanation = explainer.Explain(pair);
  const size_t total_words =
      text::BasicTokenize(pair.left.Description()).size() +
      text::BasicTokenize(pair.right.Description()).size();
  EXPECT_EQ(explanation.weights.size(), total_words);
  EXPECT_GE(explanation.match_probability, 0.0);
  EXPECT_LE(explanation.match_probability, 1.0);
  bool any_nonzero = false;
  for (const auto& w : explanation.weights) {
    any_nonzero |= std::abs(w.weight) > 1e-9;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST_F(LimeOnTrainedModelTest, RenderContainsWords) {
  LimeExplanation explanation;
  explanation.match_probability = 0.25;
  explanation.weights = {{"sandisk", 1, -0.5}, {"card", 1, 0.2},
                         {"transcend", 2, -0.6}};
  std::string rendered = LimeExplainer::Render(explanation);
  EXPECT_NE(rendered.find("sandisk"), std::string::npos);
  EXPECT_NE(rendered.find("entity 2"), std::string::npos);
  EXPECT_NE(rendered.find("-"), std::string::npos);
}

TEST_F(LimeOnTrainedModelTest, AttentionReportPoolsSubTokens) {
  data::LabeledPair pair = data::CaseStudyPair();
  AttentionReport report =
      ComputeWordAttention(model_.get(), dataset_, pair);
  ASSERT_FALSE(report.words.empty());
  // Every word of both entities appears once, in order.
  int entity1 = 0, entity2 = 0;
  for (const auto& w : report.words) {
    EXPECT_GE(w.score, 0.0);
    (w.entity == 1 ? entity1 : entity2)++;
  }
  EXPECT_GT(entity1, 3);
  EXPECT_GT(entity2, 3);
  std::string rendered = RenderAttention(report);
  EXPECT_NE(rendered.find("entity 1"), std::string::npos);
  EXPECT_NE(rendered.find("prediction"), std::string::npos);
}

}  // namespace
}  // namespace explain
}  // namespace emba
