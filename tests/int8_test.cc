// Tier-1 tests for the int8 dynamically-quantized inference path
// (DESIGN.md §14): mode gating, the determinism guarantees that survive
// quantization (backend and thread-count bit-identity, tiny-arena
// fallback), quantized-weight cache invalidation, the zero-allocation
// steady state with int8 scratch, the zero-element tensor audit, and the
// end-to-end tolerance contract (F1 parity with fp32).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "autograd/var.h"
#include "core/registry.h"
#include "core/scoring.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "tensor/arena.h"
#include "tensor/int8.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace emba {
namespace {

// Restores int8 mode, kernel dispatch, and the thread pool whatever a test
// forced in between.
class Int8EnvGuard {
 public:
  ~Int8EnvGuard() {
    int8::ResetMode();
    kernels::ResetBackend();
    SetGlobalThreads(1);
  }
};

bool Avx2Available() {
  return kernels::Avx2KernelsOrNull() != nullptr && kernels::CpuSupportsAvx2();
}

struct World {
  core::EncodedDataset encoded;
  std::unique_ptr<Rng> rng;
};

World& SharedWorld() {
  static World* world = [] {
    auto* w = new World();
    data::GeneratorOptions options;
    options.seed = 23;
    options.size_factor = 0.3;
    auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                                 data::WdcSize::kSmall, options);
    core::EncodeOptions encode;
    encode.max_len = 24;
    encode.wordpiece_vocab = 400;
    w->encoded = core::EncodeDataset(dataset, encode);
    w->rng = std::make_unique<Rng>(7);
    return w;
  }();
  return *world;
}

std::unique_ptr<core::EmModel> MakeEvalModel() {
  World& w = SharedWorld();
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 24;
  auto model = core::CreateModel("emba", budget,
                                 w.encoded.wordpiece->vocab().size(),
                                 w.encoded.num_id_classes, w.rng.get());
  EXPECT_TRUE(model.ok());
  (*model)->SetTraining(false);
  return std::move(*model);
}

std::vector<core::PairSample> TestSlice(size_t n) {
  const auto& test = SharedWorld().encoded.test;
  return std::vector<core::PairSample>(
      test.begin(), test.begin() + std::min(n, test.size()));
}

TEST(Int8ModeTest, EligibilityFollowsModeAndShape) {
  Int8EnvGuard guard;
  int8::ForceModeForTest(int8::Mode::kOff);
  EXPECT_FALSE(int8::Eligible(1, 64, 64));

  int8::ForceModeForTest(int8::Mode::kOn);
  EXPECT_TRUE(int8::Eligible(1, 1, 1));
  EXPECT_TRUE(int8::Eligible(8, 16, 16));
  EXPECT_FALSE(int8::Eligible(0, 16, 16));  // empty activation block
  // k beyond the i32 accumulator overflow cap (127·127·k < 2³¹).
  EXPECT_FALSE(int8::Eligible(1, 200000, 8));

  int8::ForceModeForTest(int8::Mode::kAuto);
  EXPECT_FALSE(int8::Eligible(8, 16, 16));  // 256 weight elems: too small
  EXPECT_TRUE(int8::Eligible(1, 64, 64));   // exactly kAutoMinWeightElems
}

TEST(Int8ModeTest, EnvResolutionAndOverride) {
  Int8EnvGuard guard;
  ASSERT_EQ(setenv("EMBA_INT8", "auto", 1), 0);
  int8::ResetMode();
  EXPECT_EQ(int8::ActiveMode(), int8::Mode::kAuto);
  // A runtime override (the --int8 flag) beats the environment.
  int8::SetRuntimeMode(int8::Mode::kOn);
  EXPECT_EQ(int8::ActiveMode(), int8::Mode::kOn);
  ASSERT_EQ(setenv("EMBA_INT8", "definitely-not-a-mode", 1), 0);
  int8::ResetMode();
  EXPECT_EQ(int8::ActiveMode(), int8::Mode::kOff);  // unrecognized → off
  ASSERT_EQ(unsetenv("EMBA_INT8"), 0);
  int8::ResetMode();
  EXPECT_EQ(int8::ActiveMode(), int8::Mode::kOff);  // unset → off
  EXPECT_STREQ(int8::ModeName(int8::Mode::kAuto), "auto");
}

TEST(Int8DeterminismTest, ScalarAndAvx2BackendsBitIdentical) {
  if (!Avx2Available()) {
    GTEST_SKIP() << "AVX2 backend not available on this build or CPU";
  }
  Int8EnvGuard guard;
  int8::ForceModeForTest(int8::Mode::kOn);
  auto model = MakeEvalModel();
  const auto samples = TestSlice(8);

  // The EMBA_SIMD=off + EMBA_INT8=on composition: quantization is
  // elementwise IEEE math shared by both backends and the integer GEMM is
  // exact, so — unlike fp32, where only same-backend results match — int8
  // scores are bit-identical ACROSS backends.
  kernels::ForceBackend(kernels::Backend::kScalar);
  const auto scalar_probs = core::BatchMatchProbabilities(*model, samples);
  kernels::ForceBackend(kernels::Backend::kAvx2);
  const auto avx2_probs = core::BatchMatchProbabilities(*model, samples);

  ASSERT_EQ(scalar_probs.size(), avx2_probs.size());
  for (size_t i = 0; i < scalar_probs.size(); ++i) {
    // The surrounding fp32 ops (softmax, layernorm, AoA) still follow the
    // scalar-exact contract, so the full pipeline stays bit-identical.
    EXPECT_EQ(scalar_probs[i], avx2_probs[i]) << "sample " << i;
  }
}

TEST(Int8DeterminismTest, ThreadCountInvariant) {
  Int8EnvGuard guard;
  int8::ForceModeForTest(int8::Mode::kOn);
  auto model = MakeEvalModel();
  const auto samples = TestSlice(16);

  SetGlobalThreads(1);
  const auto serial = core::BatchMatchProbabilities(*model, samples);
  SetGlobalThreads(4);
  const auto threaded = core::BatchMatchProbabilities(*model, samples);

  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "sample " << i;
  }
}

TEST(Int8CacheTest, WeightCacheInvalidatedByOptimizerStepAndLoad) {
  Int8EnvGuard guard;
  int8::ForceModeForTest(int8::Mode::kOn);
  auto model = MakeEvalModel();
  const auto samples = TestSlice(2);

  const double p0 = core::MatchProbability(*model, samples[0]);
  const int64_t builds_cold = int8::WeightCacheBuilds();
  EXPECT_GT(builds_cold, 0) << "int8 path never built a weight cache";

  // Warm re-score: every cache slot hits, nothing rebuilds.
  const double p0_again = core::MatchProbability(*model, samples[0]);
  EXPECT_EQ(p0, p0_again);
  EXPECT_EQ(int8::WeightCacheBuilds(), builds_cold);

  // In-place parameter mutation + optimizer step (the production mutation
  // pattern: Step bumps the weight generation). The data pointers are
  // unchanged, so only the generation can catch this.
  for (auto& p : model->Parameters()) {
    p.mutable_value().MulScalarInPlace(1.25f);
  }
  nn::Sgd sgd(model->Parameters(), 0.1f);
  sgd.Step();  // no grads: weights untouched here, generation bumped
  const double p1 = core::MatchProbability(*model, samples[0]);
  const int64_t builds_after_step = int8::WeightCacheBuilds();
  EXPECT_GT(builds_after_step, builds_cold)
      << "stale quantized weights survived an optimizer step";
  EXPECT_NE(p0, p1) << "rescaled weights must change the score";

  // Checkpoint round-trip: LoadParameters replaces storage wholesale and
  // must also invalidate.
  const std::string path = ::testing::TempDir() + "/int8_cache_test.ckpt";
  ASSERT_TRUE(model->SaveParameters(path).ok());
  ASSERT_TRUE(model->LoadParameters(path).ok());
  const double p2 = core::MatchProbability(*model, samples[0]);
  EXPECT_GT(int8::WeightCacheBuilds(), builds_after_step);
  EXPECT_EQ(p1, p2) << "identical weights reloaded must rescore identically";
  EXPECT_GT(int8::WeightCacheBytes(), 0);
}

// Regression: Trainer's best-epoch RestoreParameters copy-assigns same-size
// tensors into the live parameters, and the allocator routinely hands the
// just-freed block straight back — so restored weights can land at the exact
// (pointer, size) an int8 cache recorded during the last mid-training eval.
// Before RestoreParameters bumped the weight generation, that cache passed
// its validity check and post-restore evals scored with quantized
// pre-restore weights (observed as the first Run() in a process scoring
// differently from every later one). Oracle: scoring right after Run() must
// be bit-identical to scoring after an explicit generation bump — a stale
// cache survives the former but never the latter.
TEST(Int8CacheTest, EvalAfterBestEpochRestoreUsesRestoredWeights) {
  Int8EnvGuard guard;
  int8::ForceModeForTest(int8::Mode::kOn);
  World& w = SharedWorld();
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 24;

  Rng rng(11);
  auto model = core::CreateModel("emba", budget,
                                 w.encoded.wordpiece->vocab().size(),
                                 w.encoded.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config;
  config.max_epochs = 3;
  config.min_epochs = 1;
  config.seed = 17;
  core::Trainer trainer(model->get(), &w.encoded, config);
  (void)trainer.Run();

  (*model)->SetTraining(false);
  const auto samples = TestSlice(8);
  std::vector<double> warm, rebuilt;
  for (const auto& s : samples) {
    warm.push_back(core::MatchProbability(**model, s));
  }
  int8::BumpWeightGeneration();  // force re-quantization of live weights
  for (const auto& s : samples) {
    rebuilt.push_back(core::MatchProbability(**model, s));
  }
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(warm[i], rebuilt[i])
        << "sample " << i
        << ": post-restore eval served stale quantized weights";
  }
}

TEST(Int8ArenaTest, TinyArenaHeapFallbackBitIdentical) {
  Int8EnvGuard guard;
  int8::ForceModeForTest(int8::Mode::kOn);
  auto model = MakeEvalModel();
  const auto samples = TestSlice(4);

  const auto reference = core::BatchMatchProbabilities(*model, samples);
  // 1 KiB arena: every activation and every int8 GEMM output falls back to
  // the heap, int8 scratch keeps using its thread-local buffers.
  ActivationArena::SetCapacityForTest(1024);
  const auto tiny = core::BatchMatchProbabilities(*model, samples);
  ActivationArena::SetCapacityForTest(0);  // restore default capacity

  ASSERT_EQ(reference.size(), tiny.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i], tiny[i]) << "sample " << i;
  }
}

TEST(Int8ArenaTest, SteadyStateScoringAllocatesNothing) {
  Int8EnvGuard guard;
  int8::ForceModeForTest(int8::Mode::kOn);
  auto model = MakeEvalModel();
  const auto samples = TestSlice(4);

  // Warmup: builds the weight caches, grows the thread-local quantization
  // scratch to its peak, touches every pooled inference node.
  for (int warm = 0; warm < 3; ++warm) {
    for (const auto& s : samples) core::MatchProbability(*model, s);
  }
  const int64_t heap_allocs = TensorHeapAllocCount();
  const int64_t builds = int8::WeightCacheBuilds();
  for (int rep = 0; rep < 5; ++rep) {
    for (const auto& s : samples) core::MatchProbability(*model, s);
  }
  // Zero-heap-alloc steady state requires the arena: with EMBA_ARENA=off
  // every activation tensor heap-allocates by design, so only the
  // cache-stability half of the invariant applies there.
  if (!ActivationArena::DisabledByEnv()) {
    EXPECT_EQ(TensorHeapAllocCount(), heap_allocs)
        << "warm int8 scoring allocated tensors on the heap";
  }
  EXPECT_EQ(int8::WeightCacheBuilds(), builds)
      << "warm int8 scoring rebuilt weight caches";
}

// ---- zero-element tensor audit (satellite) ----

TEST(ZeroElementTest, EnsureHeapAndHeapCloneOnEmptyTensors) {
  for (const Shape& shape : {Shape({0}), Shape({0, 5}), Shape({3, 0})}) {
    Tensor t(shape);
    EXPECT_EQ(t.size(), 0);
    EXPECT_TRUE(t.OnHeap());
    t.EnsureHeap();  // must not dereference the null storage
    Tensor clone = t.HeapClone();
    EXPECT_EQ(clone.size(), 0);
    EXPECT_TRUE(clone.OnHeap());
    EXPECT_TRUE(clone.SameShape(t));
  }
}

TEST(ZeroElementTest, ArenaScopeDoesNotBumpOnEmptyTensors) {
  ActivationArena::Scope scope;
  const auto before = ActivationArena::ThreadStats();
  Tensor a(Shape({0, 8}));
  Tensor b(Shape({0}));
  b.EnsureHeap();
  Tensor c = a.HeapClone();
  const auto after = ActivationArena::ThreadStats();
  EXPECT_EQ(before.bytes_in_use, after.bytes_in_use)
      << "zero-element tensors must not consume arena bytes";
  EXPECT_EQ(before.heap_fallbacks, after.heap_fallbacks);
}

TEST(ZeroElementTest, EmptyBatchScoringIsANoOp) {
  Int8EnvGuard guard;
  auto model = MakeEvalModel();
  for (int8::Mode mode : {int8::Mode::kOff, int8::Mode::kOn}) {
    int8::ForceModeForTest(mode);
    EXPECT_TRUE(core::BatchForward(*model, {}).empty());
    EXPECT_TRUE(core::BatchMatchProbabilities(*model, {}).empty());
  }
}

// ---- tolerance contract: end-to-end F1 parity (tier-1 gate) ----

TEST(Int8ToleranceTest, F1WithinContractOfFp32) {
  Int8EnvGuard guard;
  int8::ForceModeForTest(int8::Mode::kOff);

  // Train a small model to genuine class separation; random-init logits
  // cluster near 0.5 where threshold flips are noise, not signal.
  data::GeneratorOptions options;
  options.seed = 33;
  options.size_factor = 1.0;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
  core::EncodeOptions encode;
  encode.max_len = 32;
  encode.wordpiece_vocab = 600;
  auto encoded = core::EncodeDataset(dataset, encode);
  Rng rng(2);
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 32;
  auto model = core::CreateModel("emba", budget,
                                 encoded.wordpiece->vocab().size(),
                                 encoded.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  core::TrainConfig config;
  config.max_epochs = 10;
  config.patience = 10;
  core::Trainer trainer(model->get(), &encoded, config);
  trainer.Run();
  (*model)->SetTraining(false);

  auto f1_at = [&](int8::Mode mode) {
    int8::ForceModeForTest(mode);
    const auto probs = core::BatchMatchProbabilities(**model, encoded.test);
    std::vector<bool> y_true, y_pred;
    y_true.reserve(probs.size());
    y_pred.reserve(probs.size());
    for (size_t i = 0; i < probs.size(); ++i) {
      y_true.push_back(encoded.test[i].match);
      y_pred.push_back(probs[i] > 0.5);
    }
    return core::ComputeBinaryMetrics(y_true, y_pred).f1;
  };

  const double f1_fp32 = f1_at(int8::Mode::kOff);
  const double f1_int8 = f1_at(int8::Mode::kOn);
  EXPECT_GT(f1_fp32, 0.3) << "training failed; parity check meaningless";
  EXPECT_NEAR(f1_int8, f1_fp32, 0.005)
      << "int8 F1 drifted outside the tolerance contract";
}

}  // namespace
}  // namespace emba
