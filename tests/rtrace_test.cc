// Unit battery for request-scoped tracing (util/request_trace): trace-id
// round-trips, the zero-overhead-when-off contract, stage accumulation
// semantics, slowest-K / error tail retention, the JSON access log with its
// token-bucket rate limit, and the OpenMetrics exemplar exposition.
//
// The serving-path integration (X-Emba-Trace-Id over HTTP, shared batch
// spans, /rpcz lookups) lives in tests/serve_test.cc.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.h"
#include "util/request_trace.h"

namespace emba {
namespace {

class RtraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rtrace::SetEnabled(false);
    rtrace::ResetForTest();
    ASSERT_TRUE(rtrace::SetAccessLogPath("").ok());
    rtrace::SetAccessLogRateLimit(500.0);
    metrics::Registry::Global().ResetAllForTest();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(RtraceTest, TraceIdHexRoundTrip) {
  EXPECT_EQ(rtrace::TraceIdToHex(0x0123456789abcdefULL), "0123456789abcdef");
  EXPECT_EQ(rtrace::ParseTraceIdHex("0123456789abcdef"), 0x0123456789abcdefULL);
  EXPECT_EQ(rtrace::ParseTraceIdHex("ABC"), 0xabcULL);  // short + uppercase ok
  EXPECT_EQ(rtrace::ParseTraceIdHex(""), 0u);
  EXPECT_EQ(rtrace::ParseTraceIdHex("xyz"), 0u);
  EXPECT_EQ(rtrace::ParseTraceIdHex("0123456789abcdef0"), 0u);  // 17 digits
}

TEST_F(RtraceTest, DisabledStartReturnsNull) {
  ASSERT_FALSE(rtrace::Enabled());
  EXPECT_EQ(rtrace::StartRequest(), nullptr);
  EXPECT_TRUE(rtrace::SnapshotInFlight().empty());
  // FinishRequest on the null context is the untraced path — a no-op.
  rtrace::FinishRequest(nullptr, 200);
  EXPECT_TRUE(rtrace::SnapshotRetained().empty());
}

TEST_F(RtraceTest, StartFinishRetainsRecord) {
  rtrace::SetEnabled(true);
  auto ctx = rtrace::StartRequest();
  ASSERT_NE(ctx, nullptr);
  EXPECT_NE(ctx->trace_id(), 0u);
  ctx->SetEndpoint("/match");
  ctx->AddStageNs(rtrace::Stage::kParse, 1000000);  // 1 ms

  ASSERT_EQ(rtrace::SnapshotInFlight().size(), 1u);
  rtrace::FinishRequest(ctx, 200);
  EXPECT_TRUE(rtrace::SnapshotInFlight().empty());

  rtrace::RequestRecord rec;
  ASSERT_TRUE(rtrace::FindRetained(ctx->trace_id(), &rec));
  EXPECT_EQ(rec.endpoint, "/match");
  EXPECT_EQ(rec.status, 200);
  EXPECT_FALSE(rec.error);
  EXPECT_FALSE(rec.in_flight);
  EXPECT_NEAR(rec.stage_ms[static_cast<int>(rtrace::Stage::kParse)], 1.0,
              1e-9);
  EXPECT_GE(rec.e2e_ms, 0.0);
  // other = e2e − Σstages, floored at zero.
  EXPECT_GE(rec.other_ms, 0.0);
}

TEST_F(RtraceTest, StageAccumulationSemantics) {
  rtrace::RequestContext ctx(42);
  ctx.AddStageNs(rtrace::Stage::kParse, 100);
  ctx.AddStageNs(rtrace::Stage::kParse, 250);  // sums: fed from two regions
  EXPECT_EQ(ctx.StageNs(rtrace::Stage::kParse), 350);

  ctx.MergeStageMaxNs(rtrace::Stage::kQueueWait, 500);
  ctx.MergeStageMaxNs(rtrace::Stage::kQueueWait, 300);  // keeps the max
  ctx.MergeStageMaxNs(rtrace::Stage::kQueueWait, 900);
  EXPECT_EQ(ctx.StageNs(rtrace::Stage::kQueueWait), 900);
}

TEST_F(RtraceTest, SlowestReservoirEvictsFastest) {
  rtrace::SetEnabled(true);
  rtrace::SetSlowestK(1);

  // `slow` starts first, so by finish time its e2e exceeds `fast`'s.
  auto slow = rtrace::StartRequest();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto fast = rtrace::StartRequest();
  rtrace::FinishRequest(fast, 200);   // fills the K=1 reservoir
  rtrace::FinishRequest(slow, 200);   // slower → evicts `fast`

  const std::vector<rtrace::RequestRecord> retained =
      rtrace::SnapshotRetained();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].trace_id, slow->trace_id());

  rtrace::RequestRecord rec;
  EXPECT_FALSE(rtrace::FindRetained(fast->trace_id(), &rec));

  // A faster newcomer must NOT evict the retained slow record.
  auto faster = rtrace::StartRequest();
  rtrace::FinishRequest(faster, 200);
  ASSERT_EQ(rtrace::SnapshotRetained().size(), 1u);
  EXPECT_EQ(rtrace::SnapshotRetained()[0].trace_id, slow->trace_id());
}

TEST_F(RtraceTest, ErrorsRetainedRegardlessOfLatency) {
  rtrace::SetEnabled(true);
  rtrace::SetSlowestK(1);

  // Occupy the reservoir with a slower success.
  auto slow = rtrace::StartRequest();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  rtrace::FinishRequest(slow, 200);

  // A fast 500 and a fast abort (status 0) both retain via the error pool.
  auto failed = rtrace::StartRequest();
  rtrace::FinishRequest(failed, 500);
  auto aborted = rtrace::StartRequest();
  rtrace::FinishRequest(aborted, 0);

  rtrace::RequestRecord rec;
  ASSERT_TRUE(rtrace::FindRetained(failed->trace_id(), &rec));
  EXPECT_TRUE(rec.error);
  EXPECT_EQ(rec.status, 500);
  ASSERT_TRUE(rtrace::FindRetained(aborted->trace_id(), &rec));
  EXPECT_TRUE(rec.error);
  EXPECT_EQ(rec.status, 0);

  // SnapshotRetained = slowest ∪ errors, each id exactly once.
  const std::vector<rtrace::RequestRecord> retained =
      rtrace::SnapshotRetained();
  EXPECT_EQ(retained.size(), 3u);
}

TEST_F(RtraceTest, InFlightRecordsVisibleBeforeFinish) {
  rtrace::SetEnabled(true);
  auto ctx = rtrace::StartRequest();
  ctx->SetEndpoint("/dedupe");
  const std::vector<rtrace::RequestRecord> in_flight =
      rtrace::SnapshotInFlight();
  ASSERT_EQ(in_flight.size(), 1u);
  EXPECT_TRUE(in_flight[0].in_flight);
  EXPECT_EQ(in_flight[0].endpoint, "/dedupe");

  // FindRetained falls back to the in-flight table.
  rtrace::RequestRecord rec;
  ASSERT_TRUE(rtrace::FindRetainedHex(ctx->trace_id_hex(), &rec));
  EXPECT_TRUE(rec.in_flight);
  rtrace::FinishRequest(ctx, 200);
}

TEST_F(RtraceTest, BatchSpanLinksSiblings) {
  rtrace::SetEnabled(true);
  auto a = rtrace::StartRequest();
  auto b = rtrace::StartRequest();

  auto span = rtrace::BeginBatch("deadline", 2);
  EXPECT_GT(span->batch_id, 0u);
  span->member_trace_ids = {a->trace_id(), b->trace_id()};
  a->LinkBatch(span);
  b->LinkBatch(span);
  span->compute_ns.store(2000000, std::memory_order_relaxed);  // 2 ms

  rtrace::FinishRequest(a, 200);
  rtrace::FinishRequest(b, 200);

  rtrace::RequestRecord rec;
  ASSERT_TRUE(rtrace::FindRetained(a->trace_id(), &rec));
  ASSERT_TRUE(rec.has_batch);
  EXPECT_EQ(rec.batch_id, span->batch_id);
  EXPECT_EQ(rec.batch_size, 2);
  EXPECT_EQ(rec.fire_reason, "deadline");
  EXPECT_NEAR(rec.batch_compute_ms, 2.0, 1e-9);
  // Siblings exclude self.
  ASSERT_EQ(rec.sibling_trace_ids.size(), 1u);
  EXPECT_EQ(rec.sibling_trace_ids[0], b->trace_id_hex());

  // Batch ids are process-monotonic.
  auto next = rtrace::BeginBatch("full", 1);
  EXPECT_GT(next->batch_id, span->batch_id);
}

TEST_F(RtraceTest, ThreadBatchSpanIsThreadLocal) {
  auto span = rtrace::BeginBatch("full", 4);
  rtrace::SetThreadBatchSpan(span.get());
  EXPECT_EQ(rtrace::ThreadBatchSpan(), span.get());
  std::thread([&] { EXPECT_EQ(rtrace::ThreadBatchSpan(), nullptr); }).join();
  rtrace::SetThreadBatchSpan(nullptr);
  EXPECT_EQ(rtrace::ThreadBatchSpan(), nullptr);
}

TEST_F(RtraceTest, AccessLogWritesJsonLines) {
  const std::string path = "/tmp/emba_rtrace_access_log.jsonl";
  std::remove(path.c_str());
  rtrace::SetEnabled(true);
  ASSERT_TRUE(rtrace::SetAccessLogPath(path).ok());

  auto ctx = rtrace::StartRequest();
  ctx->SetEndpoint("/match");
  ctx->AddStageNs(rtrace::Stage::kParse, 500000);
  rtrace::FinishRequest(ctx, 200);
  ASSERT_TRUE(rtrace::FlushAccessLog().ok());

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"trace_id\": \"" + ctx->trace_id_hex() + "\""),
            std::string::npos);
  EXPECT_NE(line.find("\"endpoint\": \"/match\""), std::string::npos);
  EXPECT_NE(line.find("\"status\": 200"), std::string::npos);
  EXPECT_NE(line.find("\"stages_ms\""), std::string::npos);
  EXPECT_NE(line.find("\"parse\": 0.5"), std::string::npos);
  EXPECT_NE(line.find("\"int8\": false"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));  // exactly one line
  EXPECT_EQ(metrics::GetCounter("serve.access_log.lines").Value(), 1u);

  std::remove(path.c_str());
}

TEST_F(RtraceTest, AccessLogRateLimitDropsAndCounts) {
  const std::string path = "/tmp/emba_rtrace_access_log_rate.jsonl";
  std::remove(path.c_str());
  rtrace::SetEnabled(true);
  ASSERT_TRUE(rtrace::SetAccessLogPath(path).ok());
  // Zero refill rate: exactly the one token in the bucket is spendable.
  rtrace::SetAccessLogRateLimit(0.0);

  for (int i = 0; i < 5; ++i) {
    auto ctx = rtrace::StartRequest();
    rtrace::FinishRequest(ctx, 200);
  }
  ASSERT_TRUE(rtrace::FlushAccessLog().ok());

  EXPECT_EQ(metrics::GetCounter("serve.access_log.lines").Value(), 1u);
  EXPECT_EQ(metrics::GetCounter("serve.access_log.dropped").Value(), 4u);
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1);

  std::remove(path.c_str());
}

TEST_F(RtraceTest, ExemplarRendersInPrometheusExposition) {
  metrics::Histogram& h = metrics::GetHistogram("rtrace_test.exemplar_ms");
  h.Observe(1.0);  // exemplar-free observation
  h.ObserveWithExemplar(3.0, 0xdeadbeefULL);

  const std::string text = metrics::Registry::Global().ToPrometheus();
  // OpenMetrics exemplar syntax on the owning bucket:
  //   ..._bucket{le="X"} N # {trace_id="<16 hex>"} 3 <unix ts>
  const std::string needle = "# {trace_id=\"00000000deadbeef\"} 3";
  EXPECT_NE(text.find(needle), std::string::npos) << text;

  // Histograms that never saw an exemplar keep byte-identical bucket lines.
  metrics::GetHistogram("rtrace_test.plain_ms").Observe(1.0);
  const std::string plain_section = "emba_rtrace_test_plain_ms_bucket";
  std::istringstream lines(metrics::Registry::Global().ToPrometheus());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(plain_section, 0) == 0) {
      EXPECT_EQ(line.find('#'), std::string::npos) << line;
    }
  }
}

TEST_F(RtraceTest, FinishFeedsStageHistogramsWithExemplars) {
  rtrace::SetEnabled(true);
  auto ctx = rtrace::StartRequest();
  ctx->AddStageNs(rtrace::Stage::kCompute, 7000000);  // 7 ms
  rtrace::FinishRequest(ctx, 200);

  metrics::Histogram& compute =
      metrics::GetHistogram("serve.stage.compute_ms");
  EXPECT_EQ(compute.Count(), 1u);
  // Stages the request never passed through stay empty (no zero-skew).
  EXPECT_EQ(metrics::GetHistogram("serve.stage.queue_wait_ms").Count(), 0u);

  const std::string text = metrics::Registry::Global().ToPrometheus();
  EXPECT_NE(text.find("# {trace_id=\"" + ctx->trace_id_hex() + "\"}"),
            std::string::npos);
}

TEST_F(RtraceTest, SlowestKTrimsOnShrink) {
  rtrace::SetEnabled(true);
  rtrace::SetSlowestK(8);
  std::vector<std::shared_ptr<rtrace::RequestContext>> ctxs;
  for (int i = 0; i < 4; ++i) ctxs.push_back(rtrace::StartRequest());
  for (auto& ctx : ctxs) rtrace::FinishRequest(ctx, 200);
  EXPECT_EQ(rtrace::SnapshotRetained().size(), 4u);
  rtrace::SetSlowestK(2);
  EXPECT_EQ(rtrace::SlowestK(), 2u);
  EXPECT_EQ(rtrace::SnapshotRetained().size(), 2u);
}

TEST_F(RtraceTest, ProcessStartTimeGaugePublished) {
  metrics::SampleProcessGauges();
  const double start =
      metrics::GetGauge("process.start_time_seconds").Value();
  const double now = std::chrono::duration<double>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  EXPECT_GT(start, 0.0);
  EXPECT_LE(start, now);
  // Started within the last day — catches unit mistakes (ms vs s).
  EXPECT_GT(start, now - 86400.0);
}

}  // namespace
}  // namespace emba
