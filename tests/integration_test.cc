// End-to-end integration tests crossing every module boundary: generate a
// dataset, train EMBA and JointBERT, and verify the paper's headline
// qualitative claims hold on the synthetic substrate — EMBA's entity-ID
// heads work where [CLS] fails, and the EM F1 is competitive.
#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/trainer.h"
#include "data/generator.h"

namespace emba {
namespace core {
namespace {

struct TrainedPair {
  TrainResult emba;
  TrainResult jointbert;
};

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorOptions options;
    options.seed = 77;
    options.size_factor = 1.0;
    auto raw = data::MakeWdc(data::WdcCategory::kComputers,
                             data::WdcSize::kMedium, options);
    EncodeOptions encode_options;
    encode_options.max_len = 48;
    encode_options.wordpiece_vocab = 1200;
    dataset_ = new EncodedDataset(EncodeDataset(raw, encode_options));

    results_ = new TrainedPair();
    results_->emba = TrainModel("emba", 101);
    results_->jointbert = TrainModel("jointbert", 101);
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete results_;
    dataset_ = nullptr;
    results_ = nullptr;
  }

  static TrainResult TrainModel(const std::string& name, uint64_t seed) {
    Rng rng(seed);
    ModelBudget budget;
    budget.dim = 32;
    budget.layers = 2;
    budget.heads = 4;
    budget.max_len = 48;
    auto model = CreateModel(name, budget, dataset_->wordpiece->vocab().size(),
                             dataset_->num_id_classes, &rng);
    EMBA_CHECK(model.ok());
    TrainConfig config;
    config.max_epochs = 12;
    config.patience = 12;
    config.seed = seed;
    Trainer trainer(model->get(), dataset_, config);
    return trainer.Run();
  }

  static EncodedDataset* dataset_;
  static TrainedPair* results_;
};

EncodedDataset* EndToEndTest::dataset_ = nullptr;
TrainedPair* EndToEndTest::results_ = nullptr;

TEST_F(EndToEndTest, EmbaLearnsTheEmTask) {
  EXPECT_GT(results_->emba.test.em.f1, 0.5);
}

TEST_F(EndToEndTest, EmbaEntityIdHeadsBeatJointBertCls) {
  // Table 3's central result: token-level aggregation makes the auxiliary
  // ID tasks learnable while a single [CLS] vector cannot serve three
  // objectives at once.
  EXPECT_GT(results_->emba.test.id1_accuracy,
            results_->jointbert.test.id1_accuracy);
  EXPECT_GT(results_->emba.test.id2_accuracy,
            results_->jointbert.test.id2_accuracy);
}

TEST_F(EndToEndTest, EmbaEmF1AtLeastCompetitiveWithJointBert) {
  EXPECT_GE(results_->emba.test.em.f1,
            results_->jointbert.test.em.f1 - 0.05);
}

TEST_F(EndToEndTest, ThroughputMeasured) {
  EXPECT_GT(results_->emba.train_pairs_per_second, 0.0);
  EXPECT_GT(results_->jointbert.inference_pairs_per_second, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace emba
