// Tier-1 fault-injection tests for util/http_server: a hostile or broken
// client must always get a 4xx (or a clean close) and must never crash the
// server or leak a connection slot. Exercises fragmented reads
// (byte-at-a-time requests, bodies split across writes), oversized bodies
// (413) and header blocks (431), malformed request lines and headers (400),
// unsupported methods (405), bad Content-Length (400), mid-request
// disconnects, Expect: 100-continue, and worker-pool admission (503 +
// RefusedConnections when the pending queue is full). Runs under the
// ASan+UBSan CI job like every tier-1 test.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/http_server.h"

namespace emba {
namespace {

// ---------------------------------------------------------------------------
// Raw-socket client primitives: the whole point is to control exactly what
// bytes hit the wire and when.

int Connect(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

std::string RecvAll(int fd) {
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  return raw;
}

int StatusOf(const std::string& raw) {
  if (raw.rfind("HTTP/1.1 ", 0) != 0) return -1;
  return std::atoi(raw.c_str() + std::strlen("HTTP/1.1 "));
}

std::string BodyOf(const std::string& raw) {
  const size_t header_end = raw.find("\r\n\r\n");
  return header_end == std::string::npos ? "" : raw.substr(header_end + 4);
}

/// Sends the raw request in `pieces` with a pause between writes, then
/// reads the full response.
std::string RoundTripPieces(int port, const std::vector<std::string>& pieces,
                            int pause_ms = 2) {
  const int fd = Connect(port);
  for (const std::string& piece : pieces) {
    SendAll(fd, piece);
    std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
  }
  const std::string raw = RecvAll(fd);
  close(fd);
  return raw;
}

std::string PostRequest(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
}

/// The server under test echoes what it parsed, so assembly bugs are
/// visible in the response, not just in the status code.
http::HttpResponse EchoHandler(const http::HttpRequest& req) {
  http::HttpResponse resp;
  resp.body = req.method + " " + req.path + " [" + req.body + "] len=" +
              std::to_string(req.body.size()) + " x-test=" +
              req.Header("x-test");
  return resp;
}

void ExpectNoOpenConnections(const http::HttpServer& server) {
  // The client saw the full response, but the server may still be a few
  // instructions away from close(); poll briefly.
  for (int spin = 0; spin < 2000 && server.OpenConnections() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.OpenConnections(), 0);
}

class HttpFaultTest : public ::testing::Test {
 protected:
  void StartServer(http::HttpServerOptions options = {},
                   http::HttpServer::Handler handler = EchoHandler) {
    server_ = std::make_unique<http::HttpServer>(std::move(handler), options);
    ASSERT_TRUE(server_->Start(0).ok());
    port_ = server_->port();
  }

  void TearDown() override {
    if (server_ != nullptr) {
      ExpectNoOpenConnections(*server_);
      server_->Stop();
    }
  }

  std::unique_ptr<http::HttpServer> server_;
  int port_ = 0;
};

// ---------------------------------------------------------------------------
// Fragmented arrival: short reads must assemble identically to one write.

TEST_F(HttpFaultTest, ByteAtATimeRequestParsesIdentically) {
  StartServer();
  const std::string request = PostRequest("/echo", "hello fragmented world");
  std::vector<std::string> pieces;
  for (char c : request) pieces.emplace_back(1, c);
  const std::string raw = RoundTripPieces(port_, pieces, /*pause_ms=*/0);
  EXPECT_EQ(StatusOf(raw), 200);
  EXPECT_EQ(BodyOf(raw),
            "POST /echo [hello fragmented world] len=22 x-test=");
}

TEST_F(HttpFaultTest, BodySplitAcrossWritesIsAssembledToContentLength) {
  StartServer();
  const std::string body(300, 'b');
  const std::string request = PostRequest("/echo", body);
  // Headers in one write, then the body in three uneven chunks.
  const size_t header_end = request.find("\r\n\r\n") + 4;
  const std::string raw = RoundTripPieces(
      port_, {request.substr(0, header_end + 1),
              request.substr(header_end + 1, 120),
              request.substr(header_end + 121)});
  EXPECT_EQ(StatusOf(raw), 200);
  EXPECT_NE(BodyOf(raw).find("len=300"), std::string::npos);
}

TEST_F(HttpFaultTest, HeadersSplitMidLineParse) {
  StartServer();
  const std::string raw = RoundTripPieces(
      port_, {"GET /a HTTP/1.1\r\nHost: t\r\nx-te", "st: frag",
              "mented\r\nConnection: close\r\n\r\n"});
  EXPECT_EQ(StatusOf(raw), 200);
  EXPECT_NE(BodyOf(raw).find("x-test=fragmented"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hostile inputs: always a 4xx, never a crash.

TEST_F(HttpFaultTest, OversizedBodyAnswers413BeforeReadingIt) {
  http::HttpServerOptions options;
  options.max_body_bytes = 64;
  StartServer(options);
  // Only the headers are sent: the 413 must come from Content-Length alone.
  const int fd = Connect(port_);
  SendAll(fd, "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 100000\r\n"
              "Connection: close\r\n\r\n");
  EXPECT_EQ(StatusOf(RecvAll(fd)), 413);
  close(fd);
}

TEST_F(HttpFaultTest, OversizedHeaderBlockAnswers431) {
  http::HttpServerOptions options;
  options.max_header_bytes = 256;
  StartServer(options);
  const std::string raw = RoundTripPieces(
      port_, {"GET / HTTP/1.1\r\nx-huge: " + std::string(1000, 'h') +
              "\r\n\r\n"});
  EXPECT_EQ(StatusOf(raw), 431);
}

TEST_F(HttpFaultTest, MalformedRequestLineAnswers400) {
  StartServer();
  EXPECT_EQ(StatusOf(RoundTripPieces(port_, {"GARBAGE\r\n\r\n"})), 400);
  EXPECT_EQ(StatusOf(RoundTripPieces(port_, {"GET onlyonefield\r\n\r\n"})),
            400);
}

TEST_F(HttpFaultTest, UnsupportedMethodAnswers405) {
  StartServer();
  EXPECT_EQ(StatusOf(RoundTripPieces(
                port_, {"DELETE / HTTP/1.1\r\nHost: t\r\n\r\n"})),
            405);
}

TEST_F(HttpFaultTest, BadContentLengthAnswers400) {
  StartServer();
  EXPECT_EQ(StatusOf(RoundTripPieces(
                port_, {"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"})),
            400);
}

TEST_F(HttpFaultTest, HeaderWithoutColonAnswers400) {
  StartServer();
  EXPECT_EQ(StatusOf(RoundTripPieces(
                port_, {"GET / HTTP/1.1\r\nbroken header line\r\n\r\n"})),
            400);
}

TEST_F(HttpFaultTest, MidRequestDisconnectLeaksNothing) {
  StartServer();
  // Drop the connection mid-headers, mid-body, and before any bytes.
  for (const std::string& partial :
       {std::string("GET /ha"), PostRequest("/echo", "full body").substr(0, 60),
        std::string()}) {
    const int fd = Connect(port_);
    if (!partial.empty()) SendAll(fd, partial);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    close(fd);
  }
  ExpectNoOpenConnections(*server_);
  // The server is still fully alive for well-formed clients.
  const std::string raw =
      RoundTripPieces(port_, {PostRequest("/echo", "still alive")});
  EXPECT_EQ(StatusOf(raw), 200);
  EXPECT_NE(BodyOf(raw).find("still alive"), std::string::npos);
}

TEST_F(HttpFaultTest, Expect100ContinueGetsInterimResponse) {
  StartServer();
  const int fd = Connect(port_);
  SendAll(fd, "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n"
              "Expect: 100-continue\r\nConnection: close\r\n\r\n");
  // Read until the interim response arrives, then send the body.
  std::string interim;
  char c;
  while (interim.find("\r\n\r\n") == std::string::npos &&
         recv(fd, &c, 1, 0) == 1) {
    interim += c;
  }
  EXPECT_NE(interim.find("100 Continue"), std::string::npos);
  SendAll(fd, "hello");
  const std::string raw = RecvAll(fd);
  close(fd);
  EXPECT_EQ(StatusOf(raw), 200);
  EXPECT_NE(BodyOf(raw).find("[hello] len=5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Worker-pool admission: a full pending queue answers 503 immediately.

TEST_F(HttpFaultTest, WorkerPoolRefusesWithCanned503WhenPendingQueueFull) {
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  http::HttpServerOptions options;
  options.num_workers = 1;
  options.max_pending = 1;
  StartServer(options, [&](const http::HttpRequest& req) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    return EchoHandler(req);
  });

  // c1 occupies the only worker; wait until its handler has started so the
  // pending queue is empty again.
  const int c1 = Connect(port_);
  SendAll(c1, "GET /1 HTTP/1.1\r\nConnection: close\r\n\r\n");
  for (int spin = 0; spin < 2000 && entered.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(entered.load(), 1);

  // c2 parks in the pending queue (bound 1); give the listener a moment.
  const int c2 = Connect(port_);
  SendAll(c2, "GET /2 HTTP/1.1\r\nConnection: close\r\n\r\n");
  for (int spin = 0; spin < 2000 && server_->OpenConnections() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // c3 finds the queue full: immediate canned 503, no waiting.
  const int c3 = Connect(port_);
  SendAll(c3, "GET /3 HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::string refused = RecvAll(c3);
  close(c3);
  EXPECT_EQ(StatusOf(refused), 503);
  EXPECT_GE(server_->RefusedConnections(), 1u);

  // Release the worker: both queued requests complete normally.
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(StatusOf(RecvAll(c1)), 200);
  EXPECT_EQ(StatusOf(RecvAll(c2)), 200);
  close(c1);
  close(c2);
}

TEST_F(HttpFaultTest, WorkerPoolSurvivesMixedGoodAndHostileBurst) {
  http::HttpServerOptions options;
  options.num_workers = 3;
  options.max_body_bytes = 256;
  StartServer(options);
  std::atomic<int> ok{0}, client_errors{0}, failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 12; ++i) {
    clients.emplace_back([&, i] {
      std::string raw;
      switch (i % 4) {
        case 0:
          raw = RoundTripPieces(port_, {PostRequest("/echo", "good")}, 0);
          break;
        case 1:
          raw = RoundTripPieces(port_, {"BROKEN\r\n\r\n"}, 0);
          break;
        case 2: {  // oversized body
          const int fd = Connect(port_);
          SendAll(fd, "POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
          raw = RecvAll(fd);
          close(fd);
          break;
        }
        case 3: {  // mid-request disconnect
          const int fd = Connect(port_);
          SendAll(fd, "GET /par");
          close(fd);
          raw = "HTTP/1.1 0";  // no response expected
          break;
        }
      }
      const int status = StatusOf(raw);
      if (status == 200) ok.fetch_add(1);
      else if (status == 400 || status == 413 || status == 0) {
        client_errors.fetch_add(1);
      } else {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 3);
  EXPECT_EQ(client_errors.load(), 9);
  EXPECT_EQ(failures.load(), 0);
  ExpectNoOpenConnections(*server_);
}

}  // namespace
}  // namespace emba
