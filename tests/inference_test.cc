// Tier-1 tests for the inference fast path (ag::InferenceModeGuard) and the
// thread-local activation arena (ActivationArena):
//   - the hard contract: inference-mode scores are bit-identical to a
//     grad-mode forward, across model shapes, thread counts, the scalar
//     kernel backend, tiny-arena heap fallback, and the arena force-off path
//   - the steady-state zero-allocation guarantee: a warm scoring loop
//     creates no tensors on the heap and no new pooled inference nodes
//   - guard rails: training primitives abort loudly under an active
//     inference scope, and training works normally once the scope ends
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "autograd/var.h"
#include "core/registry.h"
#include "core/sample.h"
#include "core/scoring.h"
#include "data/generator.h"
#include "tensor/arena.h"
#include "tensor/int8.h"
#include "tensor/kernels.h"
#include "util/thread_pool.h"

namespace emba {
namespace {

// Every test here asserts BIT-IDENTITY between inference-mode and grad-mode
// forwards. The int8 path is deterministic but intentionally not fp32-exact
// (tolerance contract, DESIGN.md §14), so it must stay off even when the
// suite is run under EMBA_INT8=on — int8 behavior has its own suite
// (int8_test.cc).
class ForceInt8Off : public ::testing::Environment {
 public:
  void SetUp() override { int8::ForceModeForTest(int8::Mode::kOff); }
  void TearDown() override { int8::ResetMode(); }
};
const auto* const kForceInt8Off =
    ::testing::AddGlobalTestEnvironment(new ForceInt8Off);

// One encoded dataset shared by every model; per-model worlds differ only in
// the model itself. Small shapes keep the suite fast while still exercising
// multi-head attention, AOA pooling and the aux heads.
struct World {
  data::EmDataset dataset;
  core::EncodedDataset plain;
  core::EncodedDataset ditto;
  std::unique_ptr<Rng> rng;
};

World& SharedWorld() {
  static World* world = [] {
    auto* w = new World();
    data::GeneratorOptions options;
    options.seed = 17;
    options.size_factor = 0.3;
    w->dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
    core::EncodeOptions encode;
    encode.max_len = 24;
    encode.wordpiece_vocab = 400;
    w->plain = core::EncodeDataset(w->dataset, encode);
    encode.style = core::InputStyle::kDitto;
    w->ditto = core::EncodeDataset(w->dataset, encode);
    w->rng = std::make_unique<Rng>(5);
    return w;
  }();
  return *world;
}

std::unique_ptr<core::EmModel> MakeEvalModel(const std::string& name) {
  World& w = SharedWorld();
  const core::EncodedDataset& encoded =
      core::ModelUsesDittoInput(name) ? w.ditto : w.plain;
  core::ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 24;
  auto model = core::CreateModel(name, budget,
                                 encoded.wordpiece->vocab().size(),
                                 encoded.num_id_classes, w.rng.get());
  EMBA_CHECK(model.ok());
  (*model)->SetTraining(false);
  return std::move(*model);
}

const std::vector<core::PairSample>& SamplesFor(const std::string& name) {
  World& w = SharedWorld();
  return core::ModelUsesDittoInput(name) ? w.ditto.test : w.plain.test;
}

void ExpectTensorBitEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

// Grad-mode reference forward (gradient recording left ON, so the op layer
// takes the full MakeResult path) for one sample.
core::ModelOutput GradModeForward(const core::EmModel& model,
                                  const core::PairSample& sample) {
  EXPECT_TRUE(ag::GradEnabled());
  return model.Forward(sample);
}

TEST(InferenceFastPath, BitIdenticalToGradModeAcrossModelShapes) {
  // Covers every em-head variant: AOA + aux heads (emba), plain [CLS]
  // (bert), [CLS] + aux heads (jointbert), and DITTO-serialized input.
  for (const std::string& name : {"emba", "bert", "jointbert", "ditto"}) {
    auto model = MakeEvalModel(name);
    const auto& samples = SamplesFor(name);
    const size_t n = std::min<size_t>(samples.size(), 6);
    for (size_t i = 0; i < n; ++i) {
      const core::ModelOutput reference = GradModeForward(*model, samples[i]);
      ag::InferenceModeGuard inference;
      ActivationArena::Scope arena;
      const core::ModelOutput fast = model->Forward(samples[i]);
      ASSERT_TRUE(fast.em_logits.is_inference());
      ExpectTensorBitEqual(fast.em_logits.value(),
                           reference.em_logits.value());
      ASSERT_EQ(fast.id1_logits.defined(), reference.id1_logits.defined())
          << name;
      if (fast.id1_logits.defined()) {
        ExpectTensorBitEqual(fast.id1_logits.value(),
                             reference.id1_logits.value());
        ExpectTensorBitEqual(fast.id2_logits.value(),
                             reference.id2_logits.value());
      }
    }
  }
}

TEST(InferenceFastPath, MatchProbabilityEqualsSoftmaxReference) {
  auto model = MakeEvalModel("emba");
  const auto& samples = SamplesFor("emba");
  const size_t n = std::min<size_t>(samples.size(), 8);
  for (size_t i = 0; i < n; ++i) {
    const core::ModelOutput reference = GradModeForward(*model, samples[i]);
    Tensor probs = SoftmaxRows(reference.em_logits.value());
    const double expected = probs[1];
    EXPECT_EQ(core::MatchProbability(*model, samples[i]), expected);
    EXPECT_EQ(core::MatchProbabilityFromLogits(reference.em_logits.value()),
              expected);
  }
}

TEST(InferenceFastPath, BatchedProbabilitiesBitIdenticalAcrossThreadCounts) {
  auto model = MakeEvalModel("emba");
  const auto& all = SamplesFor("emba");
  std::vector<core::PairSample> samples(
      all.begin(), all.begin() + std::min<size_t>(all.size(), 12));

  SetGlobalThreads(1);
  const std::vector<double> serial =
      core::BatchMatchProbabilities(*model, samples);
  SetGlobalThreads(4);
  const std::vector<double> parallel =
      core::BatchMatchProbabilities(*model, samples);
  SetGlobalThreads(0);  // restore default

  ASSERT_EQ(serial.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sample " << i;
    EXPECT_EQ(serial[i], core::MatchProbability(*model, samples[i]))
        << "sample " << i;
  }
}

TEST(InferenceFastPath, BitIdenticalOnScalarBackend) {
  kernels::ForceBackend(kernels::Backend::kScalar);
  auto model = MakeEvalModel("emba");
  const auto& samples = SamplesFor("emba");
  const size_t n = std::min<size_t>(samples.size(), 4);
  for (size_t i = 0; i < n; ++i) {
    const core::ModelOutput reference = GradModeForward(*model, samples[i]);
    Tensor probs = SoftmaxRows(reference.em_logits.value());
    EXPECT_EQ(core::MatchProbability(*model, samples[i]),
              static_cast<double>(probs[1]));
  }
  kernels::ResetBackend();
}

TEST(InferenceFastPath, BatchForwardOutputsAreHeapBackedAndBitIdentical) {
  auto model = MakeEvalModel("jointbert");
  const auto& all = SamplesFor("jointbert");
  std::vector<core::PairSample> samples(
      all.begin(), all.begin() + std::min<size_t>(all.size(), 6));
  const std::vector<core::ModelOutput> batched =
      core::BatchForward(*model, samples);
  ASSERT_EQ(batched.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    // Escaped outputs must survive the arena reset: heap-backed, not
    // inference-pooled, and readable after the batch returns.
    ASSERT_FALSE(batched[i].em_logits.is_inference());
    ASSERT_TRUE(batched[i].em_logits.value().OnHeap());
    const core::ModelOutput reference = GradModeForward(*model, samples[i]);
    ExpectTensorBitEqual(batched[i].em_logits.value(),
                         reference.em_logits.value());
  }
}

TEST(InferenceFastPath, SteadyStateScoringAllocatesNothing) {
  if (ActivationArena::DisabledByEnv()) {
    GTEST_SKIP() << "EMBA_ARENA=off: heap tensors are expected";
  }
  auto model = MakeEvalModel("emba");
  const auto& samples = SamplesFor("emba");
  ASSERT_GE(samples.size(), 4u);

  // Warm-up: grows the arena high water and the inference-node pool to this
  // workload's peak.
  for (int i = 0; i < 8; ++i) {
    core::MatchProbability(*model, samples[i % samples.size()]);
  }

  const int64_t heap_before = TensorHeapAllocCount();
  const int64_t nodes_before = ag::InferenceNodesCreated();
  const ActivationArena::Stats before = ActivationArena::ThreadStats();

  constexpr int kIters = 32;
  double acc = 0.0;
  for (int i = 0; i < kIters; ++i) {
    acc += core::MatchProbability(*model, samples[i % samples.size()]);
  }
  ASSERT_GE(acc, 0.0);

  const ActivationArena::Stats after = ActivationArena::ThreadStats();
  // Zero per-intermediate-tensor mallocs and zero VarNode/pool growth on the
  // warm path — the tentpole's acceptance assertion.
  EXPECT_EQ(TensorHeapAllocCount(), heap_before);
  EXPECT_EQ(ag::InferenceNodesCreated(), nodes_before);
  EXPECT_EQ(after.resets, before.resets + kIters);
  EXPECT_EQ(after.heap_fallbacks, before.heap_fallbacks);
  EXPECT_GT(after.high_water_bytes, 0);
}

TEST(InferenceFastPath, HeapFallbackOnTinyArenaStaysBitIdentical) {
  if (ActivationArena::DisabledByEnv()) {
    GTEST_SKIP() << "EMBA_ARENA=off: fallback counters do not move";
  }
  auto model = MakeEvalModel("emba");
  const core::PairSample& sample = SamplesFor("emba")[0];
  const double reference = core::MatchProbability(*model, sample);

  // 1 KiB cannot hold a forward pass; every allocation past the first few
  // falls back to the heap mid-sample and the score must not change.
  ActivationArena::SetCapacityForTest(1024);
  const ActivationArena::Stats before = ActivationArena::ThreadStats();
  const double constrained = core::MatchProbability(*model, sample);
  const ActivationArena::Stats after = ActivationArena::ThreadStats();
  ActivationArena::SetCapacityForTest(0);

  EXPECT_EQ(constrained, reference);
  EXPECT_GT(after.heap_fallbacks, before.heap_fallbacks);
}

TEST(InferenceFastPath, ForceDisabledArenaStaysBitIdentical) {
  auto model = MakeEvalModel("emba");
  const core::PairSample& sample = SamplesFor("emba")[0];
  const double reference = core::MatchProbability(*model, sample);
  ActivationArena::ForceDisabledForTest(true);
  const double heap_scored = core::MatchProbability(*model, sample);
  ActivationArena::ForceDisabledForTest(false);
  EXPECT_EQ(heap_scored, reference);
}

// ---- guard rails ----

TEST(InferenceGuardDeathTest, ParameterCreationUnderInferenceScopeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ag::InferenceModeGuard inference;
        ag::Parameter(Tensor::Zeros({2, 2}));
      },
      "Parameter\\(\\) under inference mode");
}

TEST(InferenceGuardDeathTest, BackwardUnderInferenceScopeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ag::Var w = ag::Parameter(Tensor::Ones({2}));
        ag::Var loss = ag::Dot(w, w);
        ag::InferenceModeGuard inference;
        loss.Backward();
      },
      "Backward under inference mode");
}

TEST(InferenceGuardDeathTest, InferenceVarCannotJoinAutogradGraph) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ag::Var leaked;
        {
          ag::InferenceModeGuard inference;
          leaked = ag::Var(Tensor::Ones({2}));
        }
        // Outside the scope grad recording is back on; linking the leaked
        // inference Var into a graph must abort, not corrupt the graph.
        ag::Var w = ag::Parameter(Tensor::Ones({2}));
        ag::Dot(leaked, w);
      },
      "node\\(\\) on an inference-mode Var");
}

TEST(InferenceFastPath, TrainingWorksAfterInferenceScopeEnds) {
  {
    ag::InferenceModeGuard inference;
    ActivationArena::Scope arena;
    ag::Var a(Tensor::Full({3}, 2.0f));
    ag::Var b = ag::Scale(a, 3.0f);
    EXPECT_TRUE(b.is_inference());
    EXPECT_EQ(b.value()[0], 6.0f);
  }
  // Back to normal: parameters, graphs and gradients all work.
  EXPECT_TRUE(ag::GradEnabled());
  ag::Var w = ag::Parameter(Tensor::Full({2}, 3.0f));
  ag::Var loss = ag::Dot(w, w);
  loss.Backward();
  EXPECT_EQ(loss.item(), 18.0f);
  EXPECT_EQ(w.grad()[0], 6.0f);  // d(w·w)/dw = 2w
}

}  // namespace
}  // namespace emba
