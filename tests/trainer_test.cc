// Tests for the training loop (Algorithm 1): loss composition, early
// stopping, evaluation plumbing, learning-rate sweep, and that training
// actually improves over the untrained model on a learnable dataset.
#include <gtest/gtest.h>

#include "core/pretrain.h"
#include "core/registry.h"
#include "core/trainer.h"
#include "core/transformer_em.h"
#include "data/generator.h"

namespace emba {
namespace core {
namespace {

EncodedDataset SmallEncodedDataset(double size_factor = 0.5,
                                   InputStyle style = InputStyle::kPlain) {
  data::GeneratorOptions options;
  options.seed = 33;
  options.size_factor = size_factor;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
  EncodeOptions encode_options;
  encode_options.max_len = 32;
  encode_options.wordpiece_vocab = 600;
  encode_options.style = style;
  return EncodeDataset(dataset, encode_options);
}

ModelBudget TinyBudget() {
  ModelBudget budget;
  budget.dim = 16;
  budget.layers = 1;
  budget.heads = 2;
  budget.max_len = 32;
  return budget;
}

TEST(TrainerTest, EvaluateOnUntrainedModelIsFinite) {
  EncodedDataset dataset = SmallEncodedDataset();
  Rng rng(1);
  auto model = CreateModel("emba", TinyBudget(),
                           dataset.wordpiece->vocab().size(),
                           dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  TrainConfig config;
  Trainer trainer(model->get(), &dataset, config);
  EvalResult result = trainer.Evaluate(dataset.test);
  EXPECT_GE(result.em.f1, 0.0);
  EXPECT_LE(result.em.f1, 1.0);
  EXPECT_GE(result.id1_accuracy, 0.0);
}

TEST(TrainerTest, TrainingImprovesEmF1) {
  EncodedDataset dataset = SmallEncodedDataset(1.0);
  Rng rng(2);
  auto model = CreateModel("emba", TinyBudget(),
                           dataset.wordpiece->vocab().size(),
                           dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  TrainConfig config;
  Trainer trainer(model->get(), &dataset, config);
  EvalResult before = trainer.Evaluate(dataset.test);
  config.max_epochs = 10;
  config.patience = 10;
  Trainer full(model->get(), &dataset, config);
  TrainResult result = full.Run();
  EXPECT_GT(result.test.em.f1, before.em.f1);
  EXPECT_GT(result.test.em.f1, 0.35);
  EXPECT_GE(result.epochs_ran, 1);
  EXPECT_GT(result.train_pairs_per_second, 0.0);
  EXPECT_GT(result.inference_pairs_per_second, 0.0);
}

TEST(TrainerTest, SingleTaskModelSkipsAuxMetrics) {
  EncodedDataset dataset = SmallEncodedDataset();
  Rng rng(3);
  auto model = CreateModel("bert", TinyBudget(),
                           dataset.wordpiece->vocab().size(),
                           dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  TrainConfig config;
  config.max_epochs = 1;
  Trainer trainer(model->get(), &dataset, config);
  TrainResult result = trainer.Run();
  EXPECT_EQ(result.test.id1_accuracy, 0.0);
  EXPECT_EQ(result.test.id2_accuracy, 0.0);
}

TEST(TrainerTest, EarlyStoppingBoundsEpochs) {
  EncodedDataset dataset = SmallEncodedDataset(0.3);
  Rng rng(4);
  auto model = CreateModel("bert", TinyBudget(),
                           dataset.wordpiece->vocab().size(),
                           dataset.num_id_classes, &rng);
  ASSERT_TRUE(model.ok());
  TrainConfig config;
  config.max_epochs = 50;
  config.patience = 1;
  Trainer trainer(model->get(), &dataset, config);
  TrainResult result = trainer.Run();
  EXPECT_LT(result.epochs_ran, 50);
}

TEST(TrainerTest, LrSweepPicksAResult) {
  EncodedDataset dataset = SmallEncodedDataset(0.3);
  TrainConfig config;
  config.max_epochs = 1;
  int constructed = 0;
  auto factory = [&]() {
    Rng rng(40 + constructed);
    ++constructed;
    auto model = CreateModel("bert", TinyBudget(),
                             dataset.wordpiece->vocab().size(),
                             dataset.num_id_classes, &rng);
    EMBA_CHECK(model.ok());
    return std::move(*model);
  };
  TrainResult best = RunLrSweep(factory, dataset, config, {1e-3f, 3e-3f});
  EXPECT_EQ(constructed, 2);
  EXPECT_GE(best.best_valid_f1, 0.0);
}

TEST(PretrainTest, MlmLossDecreases) {
  EncodedDataset dataset = SmallEncodedDataset(0.3);
  Rng rng(5);
  nn::TransformerConfig encoder_config = MakeEncoderConfig(
      dataset.wordpiece->vocab().size(), 16, 1, 2, 32);
  nn::TransformerEncoder encoder(encoder_config, &rng);
  PretrainConfig config;
  config.epochs = 3;
  config.learning_rate = 2e-3f;
  PretrainResult result = PretrainMlm(&encoder, dataset, config);
  EXPECT_GT(result.masked_tokens, 0);
  EXPECT_LT(result.final_loss, result.initial_loss);
}

}  // namespace
}  // namespace core
}  // namespace emba
