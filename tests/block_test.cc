// Unit tests for the blocking module: inverted-index, MinHash/LSH and
// sorted-neighborhood candidate generation, plus the quality metrics.
#include <gtest/gtest.h>

#include "block/blocker.h"
#include "data/generator.h"

namespace emba {
namespace block {
namespace {

data::Record MakeRecord(int64_t entity, const std::string& text) {
  data::Record record;
  record.entity_id = entity;
  record.attributes.emplace_back("text", text);
  return record;
}

class BlockerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    left_ = {
        MakeRecord(0, "sandisk sdcfh-004g ultra compactflash card"),
        MakeRecord(1, "transcend ts4gcf300 compactflash card"),
        MakeRecord(2, "casio fx-991ex scientific calculator"),
    };
    right_ = {
        MakeRecord(0, "sandisk sdcfh-004g cf card retail"),
        MakeRecord(1, "transcend ts4gcf300 cf card"),
        MakeRecord(2, "casio fx-991ex calculator"),
        MakeRecord(3, "nike pegasus running shoes size 10"),
    };
  }

  std::vector<data::Record> left_, right_;
};

TEST_F(BlockerFixture, TokenBlockerFindsAllTrueMatches) {
  TokenBlocker blocker;
  auto candidates = blocker.Candidates(left_, right_);
  BlockingQuality quality = EvaluateBlocking(left_, right_, candidates);
  EXPECT_EQ(quality.true_matches, 3u);
  EXPECT_EQ(quality.covered_matches, 3u);
  EXPECT_DOUBLE_EQ(quality.pair_completeness, 1.0);
  // The unrelated shoe record must not pair with everything.
  EXPECT_LT(quality.candidates, left_.size() * right_.size());
  EXPECT_GT(quality.reduction_ratio, 0.0);
}

TEST_F(BlockerFixture, TokenBlockerStopTokenSuppression) {
  // With a tiny max frequency, common tokens ("card") stop generating
  // candidates but the rare model numbers still do.
  TokenBlockerConfig config;
  config.max_token_frequency = 0.15;  // only near-unique tokens index
  TokenBlocker blocker(config);
  auto candidates = blocker.Candidates(left_, right_);
  BlockingQuality quality = EvaluateBlocking(left_, right_, candidates);
  EXPECT_EQ(quality.covered_matches, 3u);  // model numbers carry them
}

TEST_F(BlockerFixture, MinHashSignatureProperties) {
  MinHashBlocker blocker;
  auto a = blocker.Signature(left_[0]);
  auto b = blocker.Signature(left_[0]);
  EXPECT_EQ(a, b);  // deterministic
  auto c = blocker.Signature(right_[0]);  // near-duplicate text
  auto d = blocker.Signature(right_[3]);  // unrelated text
  EXPECT_GT(MinHashBlocker::EstimateJaccard(a, c),
            MinHashBlocker::EstimateJaccard(a, d));
}

TEST_F(BlockerFixture, MinHashBlockerCoversMatches) {
  MinHashBlockerConfig config;
  config.num_hashes = 32;
  config.bands = 16;  // permissive banding for tiny texts
  MinHashBlocker blocker(config);
  auto candidates = blocker.Candidates(left_, right_);
  BlockingQuality quality = EvaluateBlocking(left_, right_, candidates);
  EXPECT_GE(quality.pair_completeness, 2.0 / 3.0);
}

TEST_F(BlockerFixture, SortedNeighborhoodKeyPrefersDigitTokens) {
  // "sdcfh-004g" splits to {sdcfh, -, 004g}; the digit-bearing fragment
  // wins over the longer plain token.
  EXPECT_EQ(SortedNeighborhoodBlocker::SortKey(left_[0]), "004g");
  data::Record r = MakeRecord(9, "aaaaaaaaaaaa bb12");
  EXPECT_EQ(SortedNeighborhoodBlocker::SortKey(r), "bb12");
}

TEST_F(BlockerFixture, SortedNeighborhoodWindowCoversNeighbors) {
  SortedNeighborhoodBlocker blocker({.window = 4});
  auto candidates = blocker.Candidates(left_, right_);
  BlockingQuality quality = EvaluateBlocking(left_, right_, candidates);
  EXPECT_GE(quality.covered_matches, 2u);
}

TEST(BlockerScaleTest, TokenBlockerOnGeneratedCatalog) {
  // Split a generated dataset's records into two "tables" by offer parity
  // and verify the blocker keeps recall high while pruning the pair space.
  data::GeneratorOptions options;
  options.seed = 5;
  auto dataset = data::MakeWdc(data::WdcCategory::kWatches,
                               data::WdcSize::kSmall, options);
  std::vector<data::Record> left, right;
  for (const auto& pair : dataset.train) {
    left.push_back(pair.left);
    right.push_back(pair.right);
    if (left.size() >= 60) break;
  }
  TokenBlocker blocker;
  auto candidates = blocker.Candidates(left, right);
  BlockingQuality quality = EvaluateBlocking(left, right, candidates);
  EXPECT_GT(quality.pair_completeness, 0.95);
  EXPECT_GT(quality.reduction_ratio, 0.3);
}

TEST(BlockerEdgeTest, EmptyInputs) {
  TokenBlocker token_blocker;
  MinHashBlocker minhash_blocker;
  SortedNeighborhoodBlocker sorted_blocker;
  std::vector<data::Record> none;
  std::vector<data::Record> one = {MakeRecord(0, "solo record")};
  for (Blocker* blocker : std::initializer_list<Blocker*>{
           &token_blocker, &minhash_blocker, &sorted_blocker}) {
    EXPECT_TRUE(blocker->Candidates(none, none).empty());
    EXPECT_TRUE(blocker->Candidates(one, none).empty());
  }
}

}  // namespace
}  // namespace block
}  // namespace emba
