// Tests for the string-similarity library and the from-scratch random
// forest / classical Magellan-style matcher.
#include <gtest/gtest.h>

#include "data/generator.h"
#include "ml/classical_matcher.h"
#include "sim/string_sim.h"

namespace emba {
namespace {

// ---------- string similarities ----------

TEST(StringSimTest, LevenshteinKnownValues) {
  EXPECT_EQ(sim::LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(sim::LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(sim::LevenshteinDistance("abc", "abc"), 0);
  EXPECT_DOUBLE_EQ(sim::LevenshteinSimilarity("", ""), 1.0);
  EXPECT_NEAR(sim::LevenshteinSimilarity("kitten", "sitting"),
              1.0 - 3.0 / 7.0, 1e-12);
}

TEST(StringSimTest, LevenshteinSymmetryAndTriangleish) {
  EXPECT_EQ(sim::LevenshteinDistance("sandisk", "transcend"),
            sim::LevenshteinDistance("transcend", "sandisk"));
}

TEST(StringSimTest, JaroKnownValues) {
  EXPECT_DOUBLE_EQ(sim::JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(sim::JaroSimilarity("abc", "xyz"), 0.0);
  // Classic reference value: jaro("martha","marhta") = 0.944444.
  EXPECT_NEAR(sim::JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  // jaro-winkler("martha","marhta") = 0.961111 (3-char prefix).
  EXPECT_NEAR(sim::JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
}

TEST(StringSimTest, JaroWinklerBoostsSharedPrefix) {
  const double base = sim::JaroSimilarity("prefixed", "prefixes");
  const double winkler = sim::JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(winkler, base);
  EXPECT_LE(winkler, 1.0);
}

TEST(StringSimTest, TokenMeasures) {
  std::vector<std::string> a = {"4gb", "cf", "card", "retail"};
  std::vector<std::string> b = {"4gb", "cf", "card", "300x"};
  EXPECT_NEAR(sim::TokenJaccard(a, b), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(sim::TokenOverlapCoefficient(a, b), 3.0 / 4.0, 1e-12);
  EXPECT_GT(sim::TokenCosine(a, b), 0.7);
  EXPECT_DOUBLE_EQ(sim::TokenJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(sim::TokenCosine(a, {}), 0.0);
}

TEST(StringSimTest, NumericJaccardIsolatesDigitTokens) {
  std::vector<std::string> a = {"sandisk", "4gb", "100x"};
  std::vector<std::string> b = {"transcend", "4gb", "300x"};
  // digit tokens: {4gb,100x} vs {4gb,300x} -> 1/3
  EXPECT_NEAR(sim::NumericTokenJaccard(a, b), 1.0 / 3.0, 1e-12);
}

TEST(StringSimTest, BigramDiceAndLengthDiff) {
  EXPECT_DOUBLE_EQ(sim::BigramDice("night", "night"), 1.0);
  EXPECT_GT(sim::BigramDice("night", "nacht"), 0.0);
  EXPECT_LT(sim::BigramDice("night", "nacht"), 1.0);
  EXPECT_DOUBLE_EQ(sim::RelativeLengthDifference("ab", "ab"), 0.0);
  EXPECT_DOUBLE_EQ(sim::RelativeLengthDifference("a", "abcd"), 0.75);
}

// ---------- decision tree / random forest ----------

TEST(RandomForestTest, TreeLearnsAxisAlignedRule) {
  // label = x0 > 0.5
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    features.push_back({x0, x1});
    labels.push_back(x0 > 0.5 ? 1 : 0);
  }
  ml::DecisionTree tree;
  ml::TreeConfig config;
  config.max_features = 2;
  tree.Fit(features, labels, config, &rng);
  EXPECT_GT(tree.PredictProbability({0.9, 0.2}), 0.8);
  EXPECT_LT(tree.PredictProbability({0.1, 0.9}), 0.2);
}

TEST(RandomForestTest, ForestLearnsXor) {
  // XOR needs depth >= 2 and is a classic single-split failure case.
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    features.push_back({x0, x1});
    labels.push_back(((x0 > 0.5) != (x1 > 0.5)) ? 1 : 0);
  }
  ml::ForestConfig config;
  config.num_trees = 15;
  config.tree.max_features = 2;
  ml::RandomForest forest(config);
  forest.Fit(features, labels);
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    int truth = ((x0 > 0.5) != (x1 > 0.5)) ? 1 : 0;
    correct += forest.Predict({x0, x1}) == truth;
  }
  EXPECT_GT(correct, 85);
}

TEST(RandomForestTest, DeterministicFromSeed) {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    features.push_back({rng.NextDouble(), rng.NextDouble()});
    labels.push_back(i % 2);
  }
  ml::RandomForest a, b;
  a.Fit(features, labels);
  b.Fit(features, labels);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble()};
    EXPECT_DOUBLE_EQ(a.PredictProbability(x), b.PredictProbability(x));
  }
}

// ---------- classical matcher ----------

TEST(ClassicalMatcherTest, FeatureVectorShapeAndRange) {
  data::LabeledPair pair = data::CaseStudyPair();
  auto features = ml::ClassicalFeatureVector(pair.left, pair.right);
  EXPECT_EQ(features.size(), ml::ClassicalFeatureNames().size());
  for (double f : features) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(ClassicalMatcherTest, LearnsProductMatching) {
  data::GeneratorOptions options;
  options.seed = 17;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kMedium, options);
  ml::ClassicalMatcher matcher;
  matcher.Fit(dataset.train);
  auto metrics = matcher.Evaluate(dataset.test);
  // Similarity features + forest handle the clean overlap signal well —
  // the paper's point is that they break on dirty/heterogeneous data, not
  // that they never work.
  EXPECT_GT(metrics.f1, 0.5);
}

TEST(ClassicalMatcherTest, CaseStudyPairIsHardForSimilarityFeatures) {
  // The sandisk/transcend pair shares most tokens; a pure-similarity
  // matcher trained on products sees high similarity. We only assert the
  // matcher produces a valid probability (the qualitative analysis lives
  // in the paper's Fig. 5 discussion).
  data::GeneratorOptions options;
  options.seed = 18;
  auto dataset = data::MakeWdc(data::WdcCategory::kComputers,
                               data::WdcSize::kSmall, options);
  ml::ClassicalMatcher matcher;
  matcher.Fit(dataset.train);
  data::LabeledPair pair = data::CaseStudyPair();
  double p = matcher.MatchProbability(pair.left, pair.right);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace emba
