// emba_cli — command-line entity matching.
//
//   emba_cli [--threads N] generate <dataset> <out_prefix>
//   emba_cli [--threads N] train <prefix> <model_name> <out.bin>
//            [--checkpoint-every N] [--resume]
//   emba_cli [--threads N] evaluate <prefix> <model_name> <in.bin>
//   emba_cli [--threads N] predict <prefix> <model_name> <in.bin> <d1> <d2>
//   emba_cli [--threads N] explain <prefix> <model_name> <in.bin> <d1> <d2>
//   emba_cli [--threads N] serve <prefix> <model_name> <in.bin>
//            [--port N] [--batch-max N] [--batch-deadline-us N]
//            [--queue-max N] [--http-workers N] [--threshold P] [--top-k N]
//
// `serve` runs the online matching service (DESIGN.md §12): POST /match and
// POST /dedupe score through a cross-request dynamic batcher; the
// observability endpoints (/metrics, /healthz, ...) ride on the same port.
// SIGTERM or Ctrl-C drains gracefully: in-flight requests finish, then the
// process exits.
//
// <prefix> refers to CSVs written by `generate` (prefix_train.csv, ...).
// The tokenizer is retrained from prefix_train.csv on every invocation so
// the vocabulary is reproducible from the data alone.
//
// --threads N sizes the worker pool used for batched evaluation scoring and
// the parallel tensor kernels; it overrides EMBA_NUM_THREADS, which in turn
// overrides the hardware_concurrency default. --threads 1 reproduces the
// single-threaded behaviour bit for bit.
//
// --checkpoint-every N writes a crash-safe training checkpoint to
// <out.bin>.ckpt every N epochs (and at the final epoch); --resume picks an
// existing <out.bin>.ckpt up and continues the interrupted run on a
// bit-identical trajectory. --checkpoint-keep-last K rotates the versioned
// checkpoint siblings down to the newest K. All are valid only with `train`.
//
// --metrics-out <path> writes a JSON dump of every counter/gauge/histogram
// at exit; --trace-out <path> records scoped spans and writes Chrome
// trace-event JSON (open in chrome://tracing or https://ui.perfetto.dev) at
// exit. EMBA_METRICS_OUT / EMBA_TRACE_OUT are the env-var equivalents; the
// flags win when both are given.
//
// --serve-obs <port> starts the live observability server (/metrics in
// Prometheus format, /healthz, /tracez, /profilez, /trainz — see DESIGN.md
// §11); --metrics-every <sec> re-writes the metrics JSON on an interval so
// headless runs aren't exit-only. Env equivalents: EMBA_OBS_PORT,
// EMBA_METRICS_EVERY.
//
// Training observability (DESIGN.md §11, src/train_obs): --train-events
// <path> streams a schema-versioned JSONL event log (per-step per-task
// losses, grad norms, evals, checkpoints); --nan-abort fail-fasts with exit
// code 120 on the first non-finite loss or gradient, naming the offender;
// --attn-stats samples attention-row entropy/row-max histograms (costly —
// off by default); --max-epochs N overrides the training epoch budget (CI
// runs bound wall-clock with it). Env equivalents: EMBA_TRAIN_EVENTS,
// EMBA_NAN_ABORT, EMBA_ATTN_STATS.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>

#include "core/registry.h"
#include "core/trainer.h"
#include "tensor/int8.h"
#include "data/generator.h"
#include "explain/lime.h"
#include "serve/service.h"
#include "train_obs/train_obs.h"
#include "util/logging.h"
#include "util/observability.h"
#include "util/request_trace.h"
#include "util/thread_pool.h"

namespace {

using namespace emba;

constexpr int kMaxLen = 48;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage (global flags: --threads N, --int8, "
               "--metrics-out <path>, --trace-out <path>,\n"
               "       --serve-obs <port>, --metrics-every <sec>, --rtrace, "
               "--access-log <path>;\n"
               "       env: EMBA_NUM_THREADS, EMBA_INT8, EMBA_METRICS_OUT, "
               "EMBA_TRACE_OUT,\n"
               "       EMBA_OBS_PORT, EMBA_METRICS_EVERY, EMBA_RTRACE, "
               "EMBA_ACCESS_LOG, EMBA_RPCZ_K):\n"
               "  emba_cli generate <dataset> <out_prefix>\n"
               "  emba_cli train <prefix> <model> <out.bin> "
               "[--checkpoint-every N] [--checkpoint-keep-last K] [--resume]\n"
               "           [--train-events <path>] [--nan-abort] "
               "[--attn-stats] [--max-epochs N]\n"
               "  emba_cli evaluate <prefix> <model> <in.bin>\n"
               "  emba_cli predict <prefix> <model> <in.bin> <d1> <d2>\n"
               "  emba_cli explain <prefix> <model> <in.bin> <d1> <d2>\n"
               "  emba_cli serve <prefix> <model> <in.bin> [--port N] "
               "[--batch-max N]\n"
               "           [--batch-deadline-us N] [--queue-max N] "
               "[--http-workers N]\n"
               "           [--threshold P] [--top-k N]\n"
               "datasets: ");
  for (const auto& name : data::AllDatasetNames()) {
    std::fprintf(stderr, "%s ", name.c_str());
  }
  std::fprintf(stderr, "\nmodels: ");
  for (const auto& name : core::AllModelNames()) {
    std::fprintf(stderr, "%s ", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

// Loads the three CSV splits under `prefix` into an EmDataset.
Result<data::EmDataset> LoadDataset(const std::string& prefix) {
  data::EmDataset dataset;
  dataset.name = prefix;
  dataset.size_tier = "csv";
  struct SplitSpec {
    const char* suffix;
    std::vector<data::LabeledPair>* dst;
  };
  SplitSpec specs[] = {{"_train.csv", &dataset.train},
                       {"_valid.csv", &dataset.valid},
                       {"_test.csv", &dataset.test}};
  int max_class = 0;
  for (const auto& spec : specs) {
    auto split = data::LoadSplitCsv(prefix + spec.suffix);
    if (!split.ok()) return split.status();
    *spec.dst = std::move(*split);
    for (const auto& pair : *spec.dst) {
      max_class = std::max({max_class, pair.left.id_class,
                            pair.right.id_class});
    }
  }
  dataset.num_id_classes = max_class + 1;
  return dataset;
}

struct LoadedModel {
  core::EncodedDataset encoded;
  // Owns the model's Rng: DropoutLayer et al. keep a raw pointer to it, so it
  // must outlive the model and keep a stable address when LoadedModel moves.
  std::unique_ptr<Rng> rng;
  std::unique_ptr<core::EmModel> model;
};

Result<LoadedModel> PrepareModel(const std::string& prefix,
                                 const std::string& model_name,
                                 const std::string& weights_path) {
  auto dataset = LoadDataset(prefix);
  if (!dataset.ok()) return dataset.status();
  LoadedModel loaded;
  core::EncodeOptions options;
  options.max_len = kMaxLen;
  options.style = core::ModelUsesDittoInput(model_name)
                      ? core::InputStyle::kDitto
                      : core::InputStyle::kPlain;
  loaded.encoded = core::EncodeDataset(*dataset, options);
  loaded.rng = std::make_unique<Rng>(4242);
  auto model = core::CreateModel(
      model_name, core::ModelBudget{.max_len = kMaxLen},
      loaded.encoded.wordpiece->vocab().size(),
      std::max(loaded.encoded.num_id_classes, 2), loaded.rng.get());
  if (!model.ok()) return model.status();
  loaded.model = std::move(*model);
  if (!weights_path.empty()) {
    Status status = loaded.model->LoadParameters(weights_path);
    if (!status.ok()) return status;
  }
  return loaded;
}

int CmdGenerate(const std::string& dataset_name, const std::string& prefix) {
  auto dataset = data::MakeByName(dataset_name, data::GeneratorOptions{});
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  struct SplitSpec {
    const char* suffix;
    const std::vector<data::LabeledPair>* src;
  };
  SplitSpec specs[] = {{"_train.csv", &dataset->train},
                       {"_valid.csv", &dataset->valid},
                       {"_test.csv", &dataset->test}};
  for (const auto& spec : specs) {
    Status status = data::SaveSplitCsv(*spec.src, prefix + spec.suffix);
    if (!status.ok()) return Fail(status.ToString());
  }
  std::printf("wrote %s_{train,valid,test}.csv  (%zu/%zu/%zu pairs, "
              "%d ID classes, LRID %.3f)\n",
              prefix.c_str(), dataset->train.size(), dataset->valid.size(),
              dataset->test.size(), dataset->num_id_classes,
              data::Lrid(*dataset));
  return 0;
}

int CmdTrain(const std::string& prefix, const std::string& model_name,
             const std::string& out_path, int checkpoint_every,
             int checkpoint_keep_last, bool resume, bool nan_abort,
             int max_epochs) {
  auto loaded = PrepareModel(prefix, model_name, "");
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  core::TrainConfig config;
  config.max_epochs = max_epochs > 0 ? max_epochs : 10;
  config.learning_rate = core::DefaultLearningRate(model_name);
  config.verbose = true;
  config.nan_abort = nan_abort;
  if (checkpoint_every > 0 || checkpoint_keep_last > 0 || resume) {
    config.checkpoint_path = out_path + ".ckpt";
    config.checkpoint_every = checkpoint_every > 0 ? checkpoint_every : 1;
    config.checkpoint_keep_last = checkpoint_keep_last;
    config.resume = resume;
    // The model's dropout Rng must ride along in the checkpoint, or a
    // resumed run would draw a different dropout stream and diverge.
    config.dropout_rng = loaded->rng.get();
  }
  core::Trainer trainer(loaded->model.get(), &loaded->encoded, config);
  core::TrainResult result;
  Status train_status = trainer.Run(&result);
  if (!train_status.ok()) return Fail(train_status.ToString());
  std::printf("test F1=%.4f P=%.4f R=%.4f  Acc1=%.3f Acc2=%.3f  "
              "(%.0f train pairs/s)\n",
              result.test.em.f1, result.test.em.precision,
              result.test.em.recall, result.test.id1_accuracy,
              result.test.id2_accuracy, result.train_pairs_per_second);
  Status status = loaded->model->SaveParameters(out_path);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("saved weights to %s\n", out_path.c_str());
  return 0;
}

int CmdEvaluate(const std::string& prefix, const std::string& model_name,
                const std::string& weights) {
  auto loaded = PrepareModel(prefix, model_name, weights);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  core::Trainer trainer(loaded->model.get(), &loaded->encoded, {});
  core::EvalResult result = trainer.Evaluate(loaded->encoded.test);
  std::printf("test F1=%.4f P=%.4f R=%.4f acc=%.4f  Acc1=%.3f Acc2=%.3f "
              "idF1=%.3f\n",
              result.em.f1, result.em.precision, result.em.recall,
              result.em.accuracy, result.id1_accuracy, result.id2_accuracy,
              result.id_macro_f1);
  return 0;
}

data::LabeledPair PairFromDescriptions(const std::string& d1,
                                       const std::string& d2) {
  data::LabeledPair pair;
  pair.left.attributes.emplace_back("text", d1);
  pair.right.attributes.emplace_back("text", d2);
  return pair;
}

int CmdPredict(const std::string& prefix, const std::string& model_name,
               const std::string& weights, const std::string& d1,
               const std::string& d2) {
  auto loaded = PrepareModel(prefix, model_name, weights);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  data::LabeledPair pair = PairFromDescriptions(d1, d2);
  core::PairSample sample = core::EncodePair(loaded->encoded, pair,
                                             loaded->model->input_style());
  ag::NoGradGuard no_grad;
  loaded->model->SetTraining(false);
  core::ModelOutput out = loaded->model->Forward(sample);
  Tensor probs = SoftmaxRows(out.em_logits.value());
  std::printf("P(match) = %.4f  ->  %s\n", probs[1],
              probs[1] >= 0.5 ? "Match" : "Non-match");
  return 0;
}

int CmdExplain(const std::string& prefix, const std::string& model_name,
               const std::string& weights, const std::string& d1,
               const std::string& d2) {
  auto loaded = PrepareModel(prefix, model_name, weights);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  explain::LimeExplainer explainer(loaded->model.get(), &loaded->encoded);
  explain::LimeExplanation explanation =
      explainer.Explain(PairFromDescriptions(d1, d2));
  std::printf("%s", explain::LimeExplainer::Render(explanation).c_str());
  return 0;
}

struct ServeFlags {
  int port = 8080;
  int batch_max = 16;
  long batch_deadline_us = 2000;
  int queue_max = 256;
  int http_workers = 4;
  double threshold = 0.5;
  int top_k = 10;
};

int CmdServe(const std::string& prefix, const std::string& model_name,
             const std::string& weights, const ServeFlags& flags) {
  auto loaded = PrepareModel(prefix, model_name, weights);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto dataset = LoadDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  // The /dedupe catalog: every distinct record description across all three
  // splits, so a query can be resolved against everything the service has.
  std::vector<data::Record> catalog;
  std::unordered_set<std::string> seen;
  for (const auto* split :
       {&dataset->train, &dataset->valid, &dataset->test}) {
    for (const auto& pair : *split) {
      for (const auto* record : {&pair.left, &pair.right}) {
        if (seen.insert(record->Description()).second) {
          catalog.push_back(*record);
        }
      }
    }
  }

  serve::ServeConfig config;
  config.batcher.max_batch = static_cast<size_t>(flags.batch_max);
  config.batcher.batch_deadline_us = flags.batch_deadline_us;
  config.batcher.max_queue = static_cast<size_t>(flags.queue_max);
  config.http_workers = flags.http_workers;
  config.match_threshold = flags.threshold;
  config.dedupe_top_k = flags.top_k;
  serve::MatchService service(loaded->model.get(), &loaded->encoded,
                              std::move(catalog), config);
  serve::InstallDrainSignalHandlers();
  Status status = service.Start(flags.port);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("emba_serve on port %d, catalog %zu records "
              "(SIGTERM/Ctrl-C drains and exits)\n",
              service.port(), service.catalog_size());
  while (!serve::DrainRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  service.Shutdown();
  std::printf("drained; bye\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  InitObservabilityFromEnv();
  train_obs::InitTrainObsFromEnv();
  // /buildz answers with the resolved SIMD/int8/arena state for every
  // subcommand, not just `serve` (which registers again, idempotently).
  serve::RegisterBuildzProviders();
  int kept = 1;
  int checkpoint_every = 0;
  int checkpoint_keep_last = 0;
  bool resume = false;
  bool nan_abort = false;
  int max_epochs = 0;
  bool train_obs_flags_seen = false;
  ServeFlags serve_flags;
  bool serve_flags_seen = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc) {
      const int threads = std::atoi(argv[++a]);
      if (threads < 1) return Fail("--threads requires a positive integer");
      SetGlobalThreads(threads);
    } else if (std::strcmp(argv[a], "--metrics-out") == 0 && a + 1 < argc) {
      EnableMetricsOutput(argv[++a]);
    } else if (std::strcmp(argv[a], "--trace-out") == 0 && a + 1 < argc) {
      EnableTraceOutput(argv[++a]);
    } else if (std::strcmp(argv[a], "--serve-obs") == 0 && a + 1 < argc) {
      const int port = std::atoi(argv[++a]);
      if (port < 0 || port > 65535) {
        return Fail("--serve-obs requires a port in [0, 65535]");
      }
      Status status = StartObservabilityServer(port);
      if (!status.ok()) return Fail(status.ToString());
    } else if (std::strcmp(argv[a], "--metrics-every") == 0 && a + 1 < argc) {
      const double seconds = std::atof(argv[++a]);
      if (!(seconds > 0.0)) {
        return Fail("--metrics-every requires a positive interval in seconds");
      }
      // Needs a destination: --metrics-out / EMBA_METRICS_OUT must come
      // first on the command line (the loop applies flags in order).
      Status status = StartPeriodicMetricsFlush(seconds);
      if (!status.ok()) return Fail(status.ToString());
    } else if (std::strcmp(argv[a], "--rtrace") == 0) {
      rtrace::SetEnabled(true);
    } else if (std::strcmp(argv[a], "--access-log") == 0 && a + 1 < argc) {
      Status status = rtrace::SetAccessLogPath(argv[++a]);
      if (!status.ok()) return Fail(status.ToString());
      rtrace::SetEnabled(true);  // a configured log implies tracing
    } else if (std::strcmp(argv[a], "--checkpoint-every") == 0 &&
               a + 1 < argc) {
      checkpoint_every = std::atoi(argv[++a]);
      if (checkpoint_every < 1) {
        return Fail("--checkpoint-every requires a positive integer");
      }
    } else if (std::strcmp(argv[a], "--checkpoint-keep-last") == 0 &&
               a + 1 < argc) {
      checkpoint_keep_last = std::atoi(argv[++a]);
      if (checkpoint_keep_last < 1) {
        return Fail("--checkpoint-keep-last requires a positive integer");
      }
    } else if (std::strcmp(argv[a], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[a], "--train-events") == 0 && a + 1 < argc) {
      train_obs::SetEventLogPath(argv[++a]);
      train_obs_flags_seen = true;
    } else if (std::strcmp(argv[a], "--nan-abort") == 0) {
      nan_abort = true;
      train_obs_flags_seen = true;
    } else if (std::strcmp(argv[a], "--attn-stats") == 0) {
      train_obs::SetAttnStatsEnabled(true);
      train_obs_flags_seen = true;
    } else if (std::strcmp(argv[a], "--max-epochs") == 0 && a + 1 < argc) {
      max_epochs = std::atoi(argv[++a]);
      train_obs_flags_seen = true;
      if (max_epochs < 1) {
        return Fail("--max-epochs requires a positive integer");
      }
    } else if (std::strcmp(argv[a], "--port") == 0 && a + 1 < argc) {
      serve_flags.port = std::atoi(argv[++a]);
      serve_flags_seen = true;
      if (serve_flags.port < 0 || serve_flags.port > 65535) {
        return Fail("--port requires a port in [0, 65535]");
      }
    } else if (std::strcmp(argv[a], "--batch-max") == 0 && a + 1 < argc) {
      serve_flags.batch_max = std::atoi(argv[++a]);
      serve_flags_seen = true;
      if (serve_flags.batch_max < 1) {
        return Fail("--batch-max requires a positive integer");
      }
    } else if (std::strcmp(argv[a], "--batch-deadline-us") == 0 &&
               a + 1 < argc) {
      serve_flags.batch_deadline_us = std::atol(argv[++a]);
      serve_flags_seen = true;
      if (serve_flags.batch_deadline_us < 0) {
        return Fail("--batch-deadline-us requires a non-negative integer");
      }
    } else if (std::strcmp(argv[a], "--queue-max") == 0 && a + 1 < argc) {
      serve_flags.queue_max = std::atoi(argv[++a]);
      serve_flags_seen = true;
      if (serve_flags.queue_max < 1) {
        return Fail("--queue-max requires a positive integer");
      }
    } else if (std::strcmp(argv[a], "--http-workers") == 0 && a + 1 < argc) {
      serve_flags.http_workers = std::atoi(argv[++a]);
      serve_flags_seen = true;
      if (serve_flags.http_workers < 1) {
        return Fail("--http-workers requires a positive integer");
      }
    } else if (std::strcmp(argv[a], "--threshold") == 0 && a + 1 < argc) {
      serve_flags.threshold = std::atof(argv[++a]);
      serve_flags_seen = true;
      if (serve_flags.threshold < 0.0 || serve_flags.threshold > 1.0) {
        return Fail("--threshold requires a probability in [0, 1]");
      }
    } else if (std::strcmp(argv[a], "--top-k") == 0 && a + 1 < argc) {
      serve_flags.top_k = std::atoi(argv[++a]);
      serve_flags_seen = true;
      if (serve_flags.top_k < 1) {
        return Fail("--top-k requires a positive integer");
      }
    } else if (std::strcmp(argv[a], "--int8") == 0) {
      // Global flag: quantized inference GEMMs (DESIGN.md §14). Overrides
      // EMBA_INT8; training math is unaffected (grad mode never quantizes).
      int8::SetRuntimeMode(int8::Mode::kOn);
    } else {
      argv[kept++] = argv[a];
    }
  }
  argc = kept;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if ((checkpoint_every > 0 || checkpoint_keep_last > 0 || resume) &&
      command != "train") {
    return Fail(
        "--checkpoint-every/--checkpoint-keep-last/--resume are only valid "
        "with `train`");
  }
  if (train_obs_flags_seen && command != "train") {
    return Fail(
        "--train-events/--nan-abort/--attn-stats/--max-epochs are only "
        "valid with `train`");
  }
  if (serve_flags_seen && command != "serve") {
    return Fail(
        "--port/--batch-max/--batch-deadline-us/--queue-max/--http-workers/"
        "--threshold/--top-k are only valid with `serve`");
  }
  if (command == "generate" && argc == 4) return CmdGenerate(argv[2], argv[3]);
  if (command == "train" && argc == 5) {
    return CmdTrain(argv[2], argv[3], argv[4], checkpoint_every,
                    checkpoint_keep_last, resume, nan_abort, max_epochs);
  }
  if (command == "evaluate" && argc == 5) {
    return CmdEvaluate(argv[2], argv[3], argv[4]);
  }
  if (command == "predict" && argc == 7) {
    return CmdPredict(argv[2], argv[3], argv[4], argv[5], argv[6]);
  }
  if (command == "explain" && argc == 7) {
    return CmdExplain(argv[2], argv[3], argv[4], argv[5], argv[6]);
  }
  if (command == "serve" && argc == 5) {
    return CmdServe(argv[2], argv[3], argv[4], serve_flags);
  }
  return Usage();
}
