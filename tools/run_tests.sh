#!/usr/bin/env bash
# Builds the project and runs both test tiers:
#   tier1 — fast unit/property tests (the default verify gate)
#   slow  — integration/pipeline tests that train real models
#
# Usage: tools/run_tests.sh [extra ctest args...]
# Honors EMBA_NUM_THREADS for the thread-pool width under test.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j

cd build
echo "=== tier1 (fast unit tests) ==="
ctest -L tier1 --output-on-failure -j "$@"
echo "=== slow (integration tests) ==="
ctest -L slow --output-on-failure -j "$@"
