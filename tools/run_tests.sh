#!/usr/bin/env bash
# Builds the project and runs both test tiers:
#   tier1 — fast unit/property tests (the default verify gate)
#   slow  — integration/pipeline tests that train real models
#
# tier1 runs four times: once with the dispatched SIMD backend, once with
# EMBA_SIMD=off (so a divergence between the AVX2 and scalar kernel backends
# — see src/tensor/kernels.h, "scalar-exact contract" — fails the suite on
# any machine regardless of which backend dispatch would pick), once with
# EMBA_ARENA=off (so the heap-only storage path behind the activation arena
# — see src/tensor/arena.h — stays bit-identical and leak-free too), and once
# with EMBA_INT8=on (so the quantized inference GEMM path — see
# src/tensor/int8.h — holds its tolerance contract everywhere, not just in
# the tests that opt into it).
#
# Usage: tools/run_tests.sh [extra ctest args...]
# Honors EMBA_NUM_THREADS for the thread-pool width under test.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j

cd build
echo "=== tier1 (fast unit tests, dispatched kernel backend) ==="
ctest -L tier1 --output-on-failure -j "$@"
echo "=== tier1 (fast unit tests, EMBA_SIMD=off) ==="
EMBA_SIMD=off ctest -L tier1 --output-on-failure -j "$@"
echo "=== tier1 (fast unit tests, EMBA_ARENA=off) ==="
EMBA_ARENA=off ctest -L tier1 --output-on-failure -j "$@"
echo "=== tier1 (fast unit tests, EMBA_INT8=on) ==="
EMBA_INT8=on ctest -L tier1 --output-on-failure -j "$@"
echo "=== serve (serving/HTTP battery, standalone pass) ==="
ctest -L serve --output-on-failure -j "$@"
echo "=== serve_bench smoke (open-loop load, must sustain throughput) ==="
./bench/serve_bench --duration 5 --rps 200 --p99-ms 250
echo "=== serve_bench smoke (int8 quantized path) ==="
./bench/serve_bench --duration 5 --rps 200 --p99-ms 250 --int8
echo "=== slow (integration tests) ==="
ctest -L slow --output-on-failure -j "$@"
