// train_report — offline analysis of train_obs JSONL event logs.
//
//   train_report <events.jsonl>                      summarize one run
//   train_report <baseline.jsonl> <candidate.jsonl>  diff two runs
//               [--f1-tol X] [--loss-tol-pct P]
//
// Diff mode prints a per-task regression table (final per-example epoch
// loss for em/id1/id2, best validation F1, test F1, throughput, numerics
// sentinels) and exits 1 when the candidate regresses beyond tolerance:
// a task loss more than --loss-tol-pct percent above baseline (default 5),
// an F1 more than --f1-tol below baseline (default 0.01), or a non-finite
// sentinel firing where the baseline was clean. Exit 0 = no regression,
// exit 2 = usage/parse error.
//
// The parser is deliberately minimal: it extracts fields from the JSON the
// train_obs writer emits (one object per line, fixed key spelling), not
// arbitrary JSON.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/atomic_file.h"
#include "util/status.h"

namespace {

using emba::ReadFileToString;
using emba::Status;

// ---- line-level field extraction (train_obs event format only) ----

bool FindString(const std::string& line, const std::string& key,
                std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const size_t start = pos + needle.size();
  const size_t stop = line.find('"', start);
  if (stop == std::string::npos) return false;
  *out = line.substr(start, stop - start);
  return true;
}

bool FindNumber(const std::string& line, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  // Non-finite numbers serialize as strings ("inf"/"-inf"/"nan").
  if (*start == '"') {
    if (std::strncmp(start, "\"inf\"", 5) == 0) {
      *out = HUGE_VAL;
    } else if (std::strncmp(start, "\"-inf\"", 6) == 0) {
      *out = -HUGE_VAL;
    } else {
      *out = NAN;
    }
    return true;
  }
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

/// Extracts the `{...}` object following `"key": ` (events nest one level
/// deep at most, so the first closing brace terminates it).
bool FindObject(const std::string& line, const std::string& key,
                std::string* out) {
  const std::string needle = "\"" + key + "\": {";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const size_t start = pos + needle.size();
  const size_t stop = line.find('}', start);
  if (stop == std::string::npos) return false;
  *out = line.substr(start, stop - start);
  return true;
}

constexpr int kNumTasks = 3;
const char* const kTaskNames[kNumTasks] = {"em", "id1", "id2"};

struct RunSummary {
  std::string path;
  std::string dataset, model;
  bool has_run_end = false;
  int64_t steps = 0;
  int64_t epochs = 0;
  double step_ms_sum = 0.0;
  /// Final-epoch per-example mean loss per task; NaN when the task never
  /// reported (single-task model).
  double final_loss[kNumTasks] = {NAN, NAN, NAN};
  double best_valid_f1 = NAN;
  double last_valid_f1 = NAN;
  double test_f1 = NAN;
  double wall_seconds = NAN;
  double nonfinite_losses = 0.0, nonfinite_grads = 0.0;
  int64_t checkpoints = 0;
};

Status ParseLog(const std::string& path, RunSummary* out) {
  std::string contents;
  Status status = ReadFileToString(path, &contents);
  if (!status.ok()) return status;
  out->path = path;
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) nl = contents.size();
    const std::string line = contents.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    std::string type;
    if (!FindString(line, "type", &type)) continue;
    if (type == "run_start") {
      FindString(line, "dataset", &out->dataset);
      FindString(line, "model", &out->model);
    } else if (type == "step") {
      ++out->steps;
      double ms = 0.0;
      if (FindNumber(line, "step_ms", &ms)) out->step_ms_sum += ms;
    } else if (type == "epoch") {
      ++out->epochs;
      std::string loss_obj, examples_obj;
      if (FindObject(line, "loss", &loss_obj) &&
          FindObject(line, "examples", &examples_obj)) {
        for (int t = 0; t < kNumTasks; ++t) {
          double sum = 0.0, n = 0.0;
          if (FindNumber(loss_obj, kTaskNames[t], &sum) &&
              FindNumber(examples_obj, kTaskNames[t], &n) && n > 0.0) {
            out->final_loss[t] = sum / n;
          }
        }
      }
    } else if (type == "eval") {
      std::string split;
      double f1 = NAN;
      if (FindString(line, "split", &split) && FindNumber(line, "f1", &f1)) {
        if (split == "valid") {
          out->last_valid_f1 = f1;
          if (std::isnan(out->best_valid_f1) || f1 > out->best_valid_f1) {
            out->best_valid_f1 = f1;
          }
        } else if (split == "test") {
          out->test_f1 = f1;
        }
      }
    } else if (type == "checkpoint") {
      ++out->checkpoints;
    } else if (type == "run_end") {
      out->has_run_end = true;
      FindNumber(line, "best_valid_f1", &out->best_valid_f1);
      FindNumber(line, "test_f1", &out->test_f1);
      FindNumber(line, "wall_seconds", &out->wall_seconds);
      FindNumber(line, "nonfinite_losses", &out->nonfinite_losses);
      FindNumber(line, "nonfinite_grads", &out->nonfinite_grads);
    }
  }
  if (out->steps == 0 && out->epochs == 0) {
    return Status::Invalid(path + " contains no step or epoch events");
  }
  return Status::OK();
}

std::string Fmt(double v, const char* fmt = "%.4f") {
  if (std::isnan(v)) return "—";
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

void PrintSummary(const RunSummary& s) {
  std::printf("run: %s (%s on %s)%s\n", s.path.c_str(), s.model.c_str(),
              s.dataset.c_str(), s.has_run_end ? "" : "  [no run_end]");
  std::printf("  epochs %lld, steps %lld, mean step %s ms, wall %s s, "
              "checkpoints %lld\n",
              static_cast<long long>(s.epochs),
              static_cast<long long>(s.steps),
              Fmt(s.steps > 0 ? s.step_ms_sum / s.steps : NAN, "%.2f").c_str(),
              Fmt(s.wall_seconds, "%.2f").c_str(),
              static_cast<long long>(s.checkpoints));
  std::printf("  final loss  em=%s id1=%s id2=%s\n",
              Fmt(s.final_loss[0]).c_str(), Fmt(s.final_loss[1]).c_str(),
              Fmt(s.final_loss[2]).c_str());
  std::printf("  best valid F1=%s  last valid F1=%s  test F1=%s\n",
              Fmt(s.best_valid_f1).c_str(), Fmt(s.last_valid_f1).c_str(),
              Fmt(s.test_f1).c_str());
  std::printf("  numerics: nonfinite losses=%.0f grads=%.0f\n",
              s.nonfinite_losses, s.nonfinite_grads);
}

struct DiffRow {
  std::string metric;
  double baseline = NAN, candidate = NAN;
  bool regressed = false;
  std::string note;
};

int PrintDiff(const RunSummary& base, const RunSummary& cand, double f1_tol,
              double loss_tol_pct) {
  std::vector<DiffRow> rows;
  for (int t = 0; t < kNumTasks; ++t) {
    DiffRow row;
    row.metric = std::string("loss.") + kTaskNames[t];
    row.baseline = base.final_loss[t];
    row.candidate = cand.final_loss[t];
    if (!std::isnan(row.baseline) && !std::isnan(row.candidate)) {
      const double bound =
          row.baseline * (1.0 + loss_tol_pct / 100.0) + 1e-12;
      row.regressed = !(row.candidate <= bound);  // NaN/inf-safe: regresses
      if (row.regressed) row.note = "above +" + Fmt(loss_tol_pct, "%.1f") + "%";
    } else if (std::isnan(row.baseline) != std::isnan(row.candidate)) {
      row.regressed = std::isnan(row.candidate);
      row.note = "task series missing on one side";
    }
    rows.push_back(row);
  }
  const struct {
    const char* name;
    double b, c;
  } f1s[] = {{"best_valid_f1", base.best_valid_f1, cand.best_valid_f1},
             {"test_f1", base.test_f1, cand.test_f1}};
  for (const auto& f : f1s) {
    DiffRow row;
    row.metric = f.name;
    row.baseline = f.b;
    row.candidate = f.c;
    if (!std::isnan(f.b)) {
      row.regressed = !(f.c >= f.b - f1_tol);  // NaN candidate regresses
      if (row.regressed) row.note = "below -" + Fmt(f1_tol, "%.3f");
    }
    rows.push_back(row);
  }
  {
    DiffRow row;
    row.metric = "nonfinite";
    row.baseline = base.nonfinite_losses + base.nonfinite_grads;
    row.candidate = cand.nonfinite_losses + cand.nonfinite_grads;
    row.regressed = row.candidate > row.baseline;
    if (row.regressed) row.note = "numerics sentinel fired";
    rows.push_back(row);
  }

  std::printf("%-16s %12s %12s  %s\n", "metric", "baseline", "candidate",
              "verdict");
  bool any_regression = false;
  for (const auto& row : rows) {
    any_regression = any_regression || row.regressed;
    std::printf("%-16s %12s %12s  %s%s%s\n", row.metric.c_str(),
                Fmt(row.baseline).c_str(), Fmt(row.candidate).c_str(),
                row.regressed ? "REGRESSED" : "ok",
                row.note.empty() ? "" : " — ", row.note.c_str());
  }
  std::printf("\nbaseline:  %lld steps, wall %s s\ncandidate: %lld steps, "
              "wall %s s\n",
              static_cast<long long>(base.steps),
              Fmt(base.wall_seconds, "%.2f").c_str(),
              static_cast<long long>(cand.steps),
              Fmt(cand.wall_seconds, "%.2f").c_str());
  return any_regression ? 1 : 0;
}

int UsageError() {
  std::fprintf(stderr,
               "usage: train_report <events.jsonl>\n"
               "       train_report <baseline.jsonl> <candidate.jsonl> "
               "[--f1-tol X] [--loss-tol-pct P]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double f1_tol = 0.01;
  double loss_tol_pct = 5.0;
  std::vector<std::string> paths;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--f1-tol") == 0 && a + 1 < argc) {
      f1_tol = std::atof(argv[++a]);
      if (f1_tol < 0.0) return UsageError();
    } else if (std::strcmp(argv[a], "--loss-tol-pct") == 0 && a + 1 < argc) {
      loss_tol_pct = std::atof(argv[++a]);
      if (loss_tol_pct < 0.0) return UsageError();
    } else if (argv[a][0] == '-') {
      return UsageError();
    } else {
      paths.push_back(argv[a]);
    }
  }
  if (paths.empty() || paths.size() > 2) return UsageError();

  std::vector<RunSummary> runs(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    Status status = ParseLog(paths[i], &runs[i]);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 2;
    }
  }
  if (runs.size() == 1) {
    PrintSummary(runs[0]);
    return 0;
  }
  PrintSummary(runs[0]);
  std::printf("\n");
  PrintSummary(runs[1]);
  std::printf("\n");
  return PrintDiff(runs[0], runs[1], f1_tol, loss_tol_pct);
}
